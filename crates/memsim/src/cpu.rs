//! CPU execution-cost model.
//!
//! Threads take contiguous chunks of the element stream (the Kokkos
//! OpenMP-backend static schedule). The model simulates one representative
//! thread's chunk against its *share* of the last-level cache (capacity
//! contention between threads), then scales traffic by the thread count.
//!
//! The atomic-accumulation terms are the CPU side of the paper's sorting
//! story (Fig 5): with *standard* order a thread's repeated keys form
//! dependent read-modify-write chains (serialized, latency-exposed); with
//! *strided* order chains disappear but every access misses the cache and
//! drags a whole line from DRAM; with *tiled strided* order the tile stays
//! cache-resident and chains are broken — the best of both.
//!
//! Calibration note: duplicated-address atomic RMWs are charged
//! `CPU_RMW_FACTOR × atomic_ns` when cache-resident, plus a
//! `dram_latency` exposure when chained or missing. This reproduces the
//! paper's *ordering* (tiled > standard ≳ strided or tiled > strided ≳
//! standard per platform) and the HBM-platforms-suffer-more trend; the
//! absolute size of the repeated-keys bandwidth collapse in Fig 5b
//! (≈100×) is under-predicted (≈5–20×), see EXPERIMENTS.md.

use crate::cache::CacheSim;
use crate::platform::{Platform, PlatformKind};
use crate::trace::{GatherScatterSpec, KernelCost};

/// Cache-resident duplicated-address RMW cost, in units of `atomic_ns`.
const CPU_RMW_FACTOR: f64 = 2.0;
/// Fraction of `dram_latency` exposed per chained (same-address
/// consecutive) RMW — the dependent-chain serialization. Partial
/// overlap with neighbouring work keeps this below a full round trip;
/// calibrated so the standard order lands between tiled-strided (cache
/// hits) and strided (cache misses), the paper's Fig 5b ordering.
const CPU_CHAIN_LATENCY: f64 = 0.4;
/// Fraction of `dram_latency` exposed per cache-missing RMW.
const CPU_MISS_LATENCY: f64 = 1.5;
/// Outstanding misses one core can sustain (memory-level parallelism).
const CPU_MLP: f64 = 10.0;

/// A CPU platform plus model options.
#[derive(Debug, Clone)]
pub struct CpuModel {
    platform: Platform,
    threads: usize,
    llc_bytes: u64,
}

impl CpuModel {
    /// Model for a CPU platform using all of its cores.
    ///
    /// # Panics
    /// Panics if `platform` is not a CPU.
    pub fn new(platform: Platform) -> Self {
        assert_eq!(platform.kind, PlatformKind::Cpu, "CpuModel needs a CPU platform");
        let threads = platform.cores;
        let llc = platform.llc_bytes;
        Self { platform, threads, llc_bytes: llc }
    }

    /// Shrink the simulated cache by `problem_scale` (paper problem size /
    /// modelled problem size), preserving working-set:cache ratios.
    pub fn scaled(platform: Platform, problem_scale: f64) -> Self {
        assert!(problem_scale >= 1.0);
        let shrunk = ((platform.llc_bytes as f64 / problem_scale) as u64).max(4096);
        let mut m = Self::new(platform);
        m.llc_bytes = shrunk;
        m
    }

    /// The platform descriptor.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Thread count used by the model.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute the kernel model and return its cost decomposition.
    pub fn run(&self, spec: &GatherScatterSpec<'_>) -> KernelCost {
        let p = &self.platform;
        let t = self.threads.max(1);
        let n_total = spec.len();
        if n_total == 0 {
            return KernelCost::default().finish();
        }
        // representative thread: the first contiguous chunk
        let chunk_len = n_total.div_ceil(t);
        let chunk = &spec.keys[..chunk_len.min(n_total)];
        let line = p.line_bytes;
        // this thread's fair share of the LLC
        let share = (self.llc_bytes / t as u64).max(line * 8);
        let mut cache = CacheSim::new(share, p.llc_assoc.min(8), line);

        let mut gather_misses: u64 = 0;
        let mut scatter_misses: u64 = 0;
        let mut chained: u64 = 0;
        let mut dup_hits: u64 = 0;
        let mut dup_misses: u64 = 0;
        // per-element duplicate detection across the whole stream: an
        // address is "duplicated" if its key occurs more than once
        let dup = duplication_table(spec.keys, spec.table_len);

        let mut prev_key = u64::MAX;
        for &k in chunk {
            if spec.atomic {
                // the scatter RMW probes its line *before* the gather of
                // the same element would have warmed it: whether the
                // accumulator was already resident decides the RMW's
                // latency exposure
                let idx = k as u64;
                let hit = cache.access_write(idx * spec.elem_bytes);
                if !hit {
                    scatter_misses += 1;
                }
                if idx == prev_key {
                    chained += 1;
                } else if dup[k as usize] {
                    if hit {
                        dup_hits += 1;
                    } else {
                        dup_misses += 1;
                    }
                }
                prev_key = idx;
            }
            for &off in spec.stencil {
                let idx = spec.stencil_index(k, off);
                if !cache.access(idx * spec.elem_bytes) {
                    gather_misses += 1;
                }
            }
        }

        let scale = n_total as f64 / chunk.len() as f64; // ≈ thread count
        let stream_bytes = n_total as f64 * spec.stream_bytes;
        let wb = cache.total_writebacks();
        let dram_bytes =
            (gather_misses + scatter_misses + wb) as f64 * line as f64 * scale + stream_bytes;
        let accesses_per_elem = spec.stencil.len() as f64 + if spec.atomic { 1.0 } else { 0.0 };
        let llc_traffic = chunk.len() as f64 * accesses_per_elem * spec.elem_bytes as f64 * scale
            + stream_bytes;
        let flops = n_total as f64 * spec.flops;

        // per-thread serial terms (threads run concurrently, so these are
        // *not* divided by the thread count)
        let t_atomic = chained as f64
            * (CPU_RMW_FACTOR * p.atomic_ns + CPU_CHAIN_LATENCY * p.dram_latency)
            + dup_hits as f64 * CPU_RMW_FACTOR * p.atomic_ns
            + dup_misses as f64 * (CPU_RMW_FACTOR * p.atomic_ns + CPU_MISS_LATENCY * p.dram_latency);
        let t_latency = (gather_misses as f64 * p.dram_latency) / CPU_MLP;

        KernelCost {
            dram_bytes,
            llc_bytes: llc_traffic,
            useful_bytes: spec.useful_bytes(),
            flops,
            t_dram: dram_bytes / p.dram_bw,
            t_llc: llc_traffic / p.llc_bw,
            t_issue: 0.0,
            t_atomic,
            t_latency,
            t_compute: flops / p.peak_flops_f32,
            ..Default::default()
        }
        .finish()
    }
}

/// `dup[k]` is true when key `k` occurs more than once in the stream.
fn duplication_table(keys: &[u32], table_len: usize) -> Vec<bool> {
    let mut counts = vec![0u8; table_len];
    for &k in keys {
        let c = &mut counts[k as usize];
        *c = c.saturating_add(1);
    }
    counts.into_iter().map(|c| c > 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform;

    fn epyc() -> Platform {
        platform::by_name("EPYC 7763").unwrap()
    }

    fn spec<'a>(keys: &'a [u32], table_len: usize) -> GatherScatterSpec<'a> {
        GatherScatterSpec {
            keys,
            table_len,
            elem_bytes: 8,
            stencil: &[0],
            stream_bytes: 8.0,
            flops: 2.0,
            atomic: true,
        }
    }

    #[test]
    #[should_panic(expected = "needs a CPU platform")]
    fn rejects_gpu_platform() {
        let _ = CpuModel::new(platform::by_name("A100").unwrap());
    }

    #[test]
    fn contiguous_unique_keys_near_stream() {
        let n = 1 << 20;
        let keys: Vec<u32> = (0..n as u32).collect();
        let m = CpuModel::scaled(epyc(), 1024.0);
        let cost = m.run(&spec(&keys, n));
        let bw = cost.bandwidth();
        let stream = epyc().dram_bw;
        assert!(
            bw > 0.3 * stream && bw < 1.5 * stream,
            "contiguous should be near STREAM: {bw:.3e} vs {stream:.3e}"
        );
    }

    #[test]
    fn repeated_keys_collapse_bandwidth() {
        let unique = 1u32 << 12;
        let reps = 128usize;
        let standard: Vec<u32> = (0..unique).flat_map(|k| std::iter::repeat_n(k, reps)).collect();
        let contiguous: Vec<u32> = (0..standard.len() as u32).collect();
        let m = CpuModel::scaled(epyc(), 2048.0);
        let c_rep = m.run(&spec(&standard, unique as usize));
        let c_con = m.run(&spec(&contiguous, standard.len()));
        assert!(
            c_rep.bandwidth() < c_con.bandwidth() / 3.0,
            "repeated keys must collapse CPU bandwidth: {:.3e} vs {:.3e}",
            c_rep.bandwidth(),
            c_con.bandwidth()
        );
    }

    #[test]
    fn tiled_order_is_best_on_cpu_with_repeats() {
        let unique = 1u32 << 14;
        let reps = 64usize;
        let standard: Vec<u32> = (0..unique).flat_map(|k| std::iter::repeat_n(k, reps)).collect();
        let strided: Vec<u32> = (0..reps).flat_map(|_| 0..unique).collect();
        let tile = 128u32; // paper: tile = thread count
        let mut tiled = Vec::with_capacity(strided.len());
        for base in (0..unique).step_by(tile as usize) {
            for _ in 0..reps {
                for k in 0..tile {
                    tiled.push(base + k);
                }
            }
        }
        // scale so one tile fits a thread's cache share but the strided
        // working set (the whole table) does not
        let m = CpuModel::scaled(epyc(), 500.0);
        let c_std = m.run(&spec(&standard, unique as usize));
        let c_str = m.run(&spec(&strided, unique as usize));
        let c_til = m.run(&spec(&tiled, unique as usize));
        assert!(
            c_til.time < c_std.time && c_til.time < c_str.time,
            "tiled must win on CPU: tiled {} std {} strided {}",
            c_til.time,
            c_std.time,
            c_str.time
        );
        // paper: strided often matches or underperforms standard on CPU
        assert!(
            c_str.time > 0.4 * c_std.time,
            "strided should not dramatically beat standard on CPU: {} vs {}",
            c_str.time,
            c_std.time
        );
    }

    #[test]
    fn hbm_platforms_suffer_more_from_repeats() {
        // relative drop (repeated vs contiguous) should be worse on the
        // higher-latency HBM part than on the DDR part (paper §5.4)
        let unique = 1u32 << 12;
        let reps = 128usize;
        let standard: Vec<u32> = (0..unique).flat_map(|k| std::iter::repeat_n(k, reps)).collect();
        let contiguous: Vec<u32> = (0..standard.len() as u32).collect();
        let drop_of = |name: &str| {
            let m = CpuModel::scaled(platform::by_name(name).unwrap(), 2048.0);
            let rep = m.run(&spec(&standard, unique as usize)).bandwidth();
            let con = m.run(&spec(&contiguous, standard.len())).bandwidth();
            con / rep
        };
        let ddr = drop_of("SPR DDR");
        let hbm = drop_of("SPR HBM");
        assert!(
            hbm > ddr,
            "HBM platform should show the more severe relative drop: {hbm:.1}x vs {ddr:.1}x"
        );
    }

    #[test]
    fn empty_stream_is_free() {
        let m = CpuModel::new(epyc());
        let keys: Vec<u32> = vec![];
        let cost = m.run(&spec(&keys, 16));
        assert_eq!(cost.time, 0.0);
    }

    #[test]
    fn duplication_table_flags_only_repeats() {
        let d = duplication_table(&[0, 1, 1, 3], 5);
        assert_eq!(d, vec![false, true, false, false, false]);
    }
}
