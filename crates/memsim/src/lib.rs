//! # memsim — trace-driven hardware performance model
//!
//! This crate is the reproduction's stand-in for the paper's twelve CPU and
//! GPU platforms (Table 1). No GPU or cluster is available here, so instead
//! of *running* on an A100 we *model* one: kernels are described by their
//! actual memory-access streams (the real key arrays produced by the real
//! sorting algorithms in `psort`) and the model accounts the mechanisms the
//! paper studies:
//!
//! * **Coalescing** — per-warp distinct-sector counting ([`trace`]).
//! * **Cache capacity & reuse** — a set-associative LRU last-level cache
//!   simulated over the real line-address stream ([`cache`]).
//! * **Atomic contention** — intra-warp conflict serialization and
//!   same-address dependency chains ([`trace`], [`gpu`], [`cpu`]).
//! * **Bandwidth & latency limits** — per-platform DRAM/LLC descriptors
//!   ([`platform`]), validated against the paper's STREAM Triad column
//!   ([`stream`]).
//! * **Roofline accounting** — FLOP and byte counters turned into
//!   arithmetic intensity and achieved throughput ([`roofline`]).
//!
//! The model's contract is the paper's reproduction target: the *shape* of
//! each figure (which sorting wins on which architecture, where crossovers
//! and cache cliffs fall), not cycle-exact absolute numbers.

pub mod cache;
pub mod cpu;
pub mod gpu;
pub mod platform;
pub mod push;
pub mod roofline;
pub mod stream;
pub mod trace;

pub use cache::CacheSim;
pub use cpu::CpuModel;
pub use gpu::GpuModel;
pub use platform::{Platform, PlatformKind, Vendor};
pub use roofline::{Roofline, RooflineSample};
pub use trace::{GatherScatterSpec, KernelCost};
