//! GPU execution-cost model.
//!
//! Executes a [`GatherScatterSpec`] "on" a GPU [`Platform`]: consecutive
//! elements form warps; per warp and stencil point the model counts the
//! distinct memory sectors (coalescing), drives the shared last-level
//! cache simulation with the real sector stream (reuse), and tallies
//! same-address overlaps (atomic serialization). The resulting bottleneck
//! terms reproduce the paper's GPU sorting results (Figs 6–8):
//!
//! * *standard* order → broadcast gathers but warp-wide atomic conflicts;
//! * *random* order → fully divergent transactions and line-granularity
//!   DRAM amplification;
//! * *strided* order → perfect coalescing but a table-sized streaming
//!   working set every pass;
//! * *tiled strided* order → coalescing **and** cache-resident tiles.

use crate::cache::CacheSim;
use crate::platform::{Platform, PlatformKind};
use crate::trace::{GatherScatterSpec, KernelCost};

/// GPU issue rate: memory transactions retired per second per SM/CU.
const ISSUE_RATE_PER_CU: f64 = 1.0e9;

/// A GPU platform plus model options.
#[derive(Debug, Clone)]
pub struct GpuModel {
    platform: Platform,
    /// Simulated LLC capacity override (bytes) for scaled-down runs.
    llc_bytes: u64,
}

impl GpuModel {
    /// Model for a GPU platform at its native cache size.
    ///
    /// # Panics
    /// Panics if `platform` is not a GPU.
    pub fn new(platform: Platform) -> Self {
        assert_eq!(platform.kind, PlatformKind::Gpu, "GpuModel needs a GPU platform");
        let llc = platform.llc_bytes;
        Self { platform, llc_bytes: llc }
    }

    /// Shrink the simulated cache by `problem_scale` — used when the
    /// modelled problem is `problem_scale`× smaller than the paper's, so
    /// capacity ratios (working set : LLC) are preserved.
    pub fn scaled(platform: Platform, problem_scale: f64) -> Self {
        assert!(problem_scale >= 1.0, "problem_scale is paper_size / model_size ≥ 1");
        let llc = ((platform.llc_bytes as f64 / problem_scale) as u64).max(4096);
        let mut m = Self::new(platform);
        m.llc_bytes = llc;
        m
    }

    /// The platform descriptor.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Simulated LLC capacity (after any scaling).
    pub fn llc_bytes(&self) -> u64 {
        self.llc_bytes
    }

    /// Execute the kernel model and return its cost decomposition.
    pub fn run(&self, spec: &GatherScatterSpec<'_>) -> KernelCost {
        let p = &self.platform;
        let w = p.warp_width;
        let n = spec.len() as f64;
        let sector = p.sector_bytes;
        let mut llc = CacheSim::new(self.llc_bytes, p.llc_assoc, sector);

        let mut transactions: u64 = 0;
        let mut gather_miss_sectors: u64 = 0;
        let mut scatter_miss_sectors: u64 = 0;
        let mut conflicts: u64 = 0;
        let mut scratch: Vec<u64> = Vec::with_capacity(w);

        for warp in spec.keys.chunks(w) {
            // gather phase: one access per stencil point per lane
            for &off in spec.stencil {
                scratch.clear();
                for &k in warp {
                    scratch.push(spec.stencil_index(k, off) * spec.elem_bytes / sector);
                }
                scratch.sort_unstable();
                scratch.dedup();
                transactions += scratch.len() as u64;
                for &s in &scratch {
                    if !llc.access_line(s) {
                        gather_miss_sectors += 1;
                    }
                }
            }
            // scatter phase (atomic kernels only): accumulate into table[key]
            if spec.atomic {
                scratch.clear();
                for &k in warp {
                    scratch.push(k as u64 * spec.elem_bytes / sector);
                }
                scratch.sort_unstable();
                scratch.dedup();
                transactions += scratch.len() as u64;
                for &s in &scratch {
                    if !llc.access_line_write(s) {
                        scatter_miss_sectors += 1;
                    }
                }
                // same-element overlaps within the warp serialize
                let mut elems: Vec<u64> = warp.iter().map(|&k| k as u64).collect();
                elems.sort_unstable();
                elems.dedup();
                conflicts += warp.len() as u64 - elems.len() as u64;
            }
        }

        // global hottest-address serialization (cross-warp conflicts)
        let hottest = if spec.atomic { hottest_multiplicity(spec.keys) } else { 0 };

        let stream_bytes = n * spec.stream_bytes;
        // reads (misses) plus dirty-line drain (writebacks) hit DRAM
        let dram_bytes = (gather_miss_sectors + scatter_miss_sectors + llc.total_writebacks())
            as f64
            * sector as f64
            + stream_bytes;
        let llc_bytes_moved = transactions as f64 * sector as f64 + stream_bytes;
        let flops = n * spec.flops;

        let cus = p.compute_units as f64;
        KernelCost {
            dram_bytes,
            llc_bytes: llc_bytes_moved,
            useful_bytes: spec.useful_bytes(),
            flops,
            t_dram: dram_bytes / p.dram_bw,
            t_llc: llc_bytes_moved / p.llc_bw,
            t_issue: transactions as f64 / (cus * ISSUE_RATE_PER_CU),
            t_atomic: (conflicts as f64 * p.atomic_ns / cus)
                .max(hottest as f64 * p.atomic_ns),
            t_latency: transactions as f64 * p.dram_latency / p.max_inflight,
            t_compute: flops / p.peak_flops_f32,
            ..Default::default()
        }
        .finish()
    }

    /// Cost of a pure streaming kernel: `bytes` moved once with no reuse
    /// structure worth simulating and no atomics, plus `flops` of
    /// arithmetic. Bandwidth- or compute-bound — the model for the
    /// grid-side field kernels (interpolator load, J clear, accumulator
    /// unload, leapfrog advance).
    pub fn stream(&self, bytes: f64, flops: f64) -> KernelCost {
        let p = &self.platform;
        KernelCost {
            dram_bytes: bytes,
            llc_bytes: bytes,
            useful_bytes: bytes,
            flops,
            t_dram: bytes / p.dram_bw,
            t_llc: bytes / p.llc_bw,
            t_compute: flops / p.peak_flops_f32,
            ..Default::default()
        }
        .finish()
    }
}

/// Highest multiplicity of any single key value in the stream.
fn hottest_multiplicity(keys: &[u32]) -> u64 {
    if keys.is_empty() {
        return 0;
    }
    let max = *keys.iter().max().unwrap() as usize;
    // histogram is fine: tables in this repo are ≤ tens of millions
    let mut counts = vec![0u32; max + 1];
    let mut best = 0u32;
    for &k in keys {
        let c = counts[k as usize] + 1;
        counts[k as usize] = c;
        if c > best {
            best = c;
        }
    }
    best as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform;

    fn a100() -> Platform {
        platform::by_name("A100").unwrap()
    }

    fn spec<'a>(keys: &'a [u32], table_len: usize) -> GatherScatterSpec<'a> {
        GatherScatterSpec {
            keys,
            table_len,
            elem_bytes: 8,
            stencil: &[0],
            stream_bytes: 8.0,
            flops: 2.0,
            atomic: true,
        }
    }

    #[test]
    #[should_panic(expected = "needs a GPU platform")]
    fn rejects_cpu_platform() {
        let _ = GpuModel::new(platform::by_name("Grace").unwrap());
    }

    #[test]
    fn contiguous_unique_keys_run_near_stream_bandwidth() {
        let n = 1 << 20;
        let keys: Vec<u32> = (0..n as u32).collect();
        let m = GpuModel::scaled(a100(), 1024.0); // table ≫ scaled LLC
        let cost = m.run(&spec(&keys, n));
        let bw = cost.bandwidth();
        let stream = a100().dram_bw;
        // logical movement (32 B/elem) over physical traffic (24 B/elem)
        // permits up to 4/3 of STREAM
        assert!(
            bw > 0.6 * stream && bw < 1.4 * stream,
            "contiguous should be near STREAM: {bw:.3e} vs {stream:.3e}"
        );
    }

    #[test]
    fn broadcast_order_is_atomics_bound() {
        // standard-sorted highly repeated keys: runs of 4096 equal keys
        let n = 1 << 18;
        let reps = 4096;
        let keys: Vec<u32> = (0..n).map(|i| (i / reps) as u32).collect();
        let m = GpuModel::scaled(a100(), 1024.0);
        let cost = m.run(&spec(&keys, n / reps));
        assert_eq!(cost.bottleneck(), "atomics");
    }

    #[test]
    fn strided_order_beats_standard_order_with_repeated_keys() {
        // 64 repeats of 4096 unique keys
        let unique = 4096u32;
        let reps = 64;
        let standard: Vec<u32> = (0..unique).flat_map(|k| std::iter::repeat_n(k, reps)).collect();
        let strided: Vec<u32> = (0..reps).flat_map(|_| 0..unique).collect();
        let m = GpuModel::scaled(a100(), 4096.0); // table far exceeds scaled LLC
        let c_std = m.run(&spec(&standard, unique as usize));
        let c_str = m.run(&spec(&strided, unique as usize));
        assert!(
            c_str.time < c_std.time / 2.0,
            "paper Fig 7: strided >2x faster than standard on NVIDIA: {} vs {}",
            c_str.time,
            c_std.time
        );
    }

    #[test]
    fn tiled_order_beats_strided_when_tile_fits_cache() {
        let unique = 1u32 << 16;
        let reps = 32usize;
        let strided: Vec<u32> = (0..reps).flat_map(|_| 0..unique).collect();
        // tiled: tiles of 1024 distinct keys, each tile repeated `reps` times
        let tile = 1024u32;
        let mut tiled = Vec::with_capacity(strided.len());
        for chunk_base in (0..unique).step_by(tile as usize) {
            for _ in 0..reps {
                for k in 0..tile {
                    tiled.push(chunk_base + k);
                }
            }
        }
        // scale so the full table misses but one tile fits
        let m = GpuModel::scaled(a100(), 2_000.0);
        assert!(m.llc_bytes() < u64::from(unique) * 8);
        assert!(m.llc_bytes() > u64::from(tile) * 8);
        let c_str = m.run(&spec(&strided, unique as usize));
        let c_til = m.run(&spec(&tiled, unique as usize));
        assert!(
            c_til.time < 0.75 * c_str.time,
            "tiled reuse must beat strided: {} vs {}",
            c_til.time,
            c_str.time
        );
        assert!(c_til.dram_bytes < 0.5 * c_str.dram_bytes);
    }

    #[test]
    fn random_order_amplifies_dram_traffic() {
        let unique = 1u32 << 16;
        let reps = 8usize;
        let strided: Vec<u32> = (0..reps).flat_map(|_| 0..unique).collect();
        // deterministic shuffle
        let mut random = strided.clone();
        let mut s = 0x12345678u64;
        for i in (1..random.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            random.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let m = GpuModel::scaled(a100(), 2_000.0);
        let c_str = m.run(&spec(&strided, unique as usize));
        let c_rnd = m.run(&spec(&random, unique as usize));
        assert!(
            c_rnd.time > 1.5 * c_str.time,
            "random must be slower: {} vs {}",
            c_rnd.time,
            c_str.time
        );
    }

    #[test]
    fn hottest_multiplicity_counts() {
        assert_eq!(hottest_multiplicity(&[]), 0);
        assert_eq!(hottest_multiplicity(&[1, 2, 3]), 1);
        assert_eq!(hottest_multiplicity(&[1, 2, 1, 1, 3, 2]), 3);
    }

    #[test]
    fn scaled_model_shrinks_cache_only() {
        let base = GpuModel::new(a100());
        let scaled = GpuModel::scaled(a100(), 100.0);
        assert_eq!(base.llc_bytes(), a100().llc_bytes);
        assert!(scaled.llc_bytes() < base.llc_bytes() / 50);
        assert_eq!(scaled.platform().name, "A100");
    }

    #[test]
    fn scaled_model_floors_at_one_page() {
        // extreme scales clamp to 4096 B — a zero/tiny cache would make
        // CacheSim degenerate and every access a miss regardless of order
        for p in platform::gpus() {
            let m = GpuModel::scaled(p.clone(), 1.0e12);
            assert_eq!(m.llc_bytes(), 4096, "{} must floor at one page", p.name);
        }
        // and the floor only engages when the scale actually demands it
        let mild = GpuModel::scaled(a100(), 2.0);
        assert_eq!(mild.llc_bytes(), a100().llc_bytes / 2);
    }

    #[test]
    fn stream_kernel_is_bandwidth_bound_at_low_intensity() {
        let m = GpuModel::new(a100());
        let c = m.stream(1.0e9, 1.0e8); // AI = 0.1 flop/B: far left of ridge
        assert_eq!(c.bottleneck(), "dram-bandwidth");
        assert!((c.time - 1.0e9 / a100().dram_bw).abs() < 1e-12);
        assert!((c.bandwidth() - a100().dram_bw).abs() < 1.0);
        // compute-heavy stream flips to the flops roof
        let hot = m.stream(1.0e6, 1.0e13);
        assert_eq!(hot.bottleneck(), "compute");
    }
}
