//! Epoch measurements and the amortized cost model.

/// What the simulation driver observed over one epoch of steps running a
/// single [`crate::Config`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Measurement {
    /// Steps in the epoch.
    pub steps: u64,
    /// Particles pushed across the epoch (steps × population).
    pub pushed: u64,
    /// Cell crossings across the epoch (the drift signal: sorting decays
    /// as particles mix, and the crossing rate tracks that mixing).
    pub crossings: u64,
    /// Total wall time of the epoch's steps, ns (includes sorting).
    pub step_ns: u64,
    /// Of `step_ns`, time spent sorting particles.
    pub sort_ns: u64,
    /// Sort events that fired during the epoch.
    pub sorts: u64,
    /// True when telemetry reported dropped events inside the epoch's
    /// window — the timings may undercount, so the tuner re-measures
    /// instead of scoring the arm on truncated data.
    pub truncated: bool,
}

impl Measurement {
    /// The tuner's objective: nanoseconds per particle push, with the
    /// sort's cost charged at its *amortized* per-step share.
    ///
    /// A sort every `interval` steps costs `mean_sort / interval` per
    /// step no matter how many sorts happened to land inside this
    /// particular epoch (an epoch shorter than the interval still sees
    /// the forced epoch-boundary sort, which would otherwise overcharge
    /// long intervals). Unmeasurable epochs score `+∞` so they can never
    /// win.
    pub fn cost_per_particle(&self, interval: usize) -> f64 {
        if self.steps == 0 || self.pushed == 0 {
            return f64::INFINITY;
        }
        let base_ns = self.step_ns.saturating_sub(self.sort_ns) as f64 / self.steps as f64;
        let sort_share = if self.sorts > 0 && interval > 0 {
            (self.sort_ns as f64 / self.sorts as f64) / interval as f64
        } else {
            0.0
        };
        (base_ns + sort_share) / (self.pushed as f64 / self.steps as f64)
    }

    /// Cell crossings per particle push (0 for an empty epoch).
    pub fn crossing_rate(&self) -> f64 {
        if self.pushed == 0 {
            0.0
        } else {
            self.crossings as f64 / self.pushed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_amortizes_sort_over_interval() {
        // 10 steps × 100 particles, 5000 ns of push + one 1000 ns sort
        let m = Measurement {
            steps: 10,
            pushed: 1000,
            crossings: 50,
            step_ns: 6000,
            sort_ns: 1000,
            sorts: 1,
            truncated: false,
        };
        // base 500 ns/step; sort charged 1000/50 = 20 ns/step at i=50,
        // even though the epoch only saw the one forced sort
        let c = m.cost_per_particle(50);
        assert!((c - (500.0 + 20.0) / 100.0).abs() < 1e-12, "{c}");
        // at i=5 the same sort costs 200 ns/step
        let c5 = m.cost_per_particle(5);
        assert!((c5 - (500.0 + 200.0) / 100.0).abs() < 1e-12, "{c5}");
        assert!((m.crossing_rate() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn unsorted_epochs_charge_no_sort_share() {
        let m = Measurement { steps: 4, pushed: 400, step_ns: 2000, ..Default::default() };
        assert!((m.cost_per_particle(0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_epochs_cost_infinity() {
        assert!(Measurement::default().cost_per_particle(20).is_infinite());
        let no_particles = Measurement { steps: 3, ..Default::default() };
        assert!(no_particles.cost_per_particle(20).is_infinite());
        assert_eq!(no_particles.crossing_rate(), 0.0);
    }
}
