//! Adaptive auto-tuning runtime: close the telemetry loop online.
//!
//! The paper's central claim is that the *best* configuration of the
//! portable optimizations — sorting order (§3.2), sorting cadence, push
//! vectorization strategy (§3.1), and scatter mode — depends on the
//! hardware and on the evolving particle distribution: standard sort wins
//! on cache-rich CPUs, strided orders on GPUs, and sorting should be
//! disabled entirely once the per-rank grid fits in last-level cache
//! (the superlinear-scaling regime of §6). This crate automates that
//! choice with an **epoch-based explore/commit loop**:
//!
//! 1. **Explore** — run each candidate [`Config`] for one epoch of
//!    simulation steps and score it with an amortized cost model
//!    ([`Measurement::cost_per_particle`]) that charges the sort's cost
//!    against the push savings it buys, spread over the sort interval.
//! 2. **Commit** — adopt the cheapest arm and keep running it.
//! 3. **Re-explore on drift** — while committed, watch the cell-crossing
//!    rate (an EWMA); when it moves materially from the rate observed at
//!    commit time (sorting decays as particles mix) or the committed
//!    cost regresses, restart exploration.
//!
//! The search is seeded with a cache-model prior shared with
//! `cluster::scaling`: when [`prior::prefer_unsorted`] says the grid's
//! push working set fits the platform LLC, the "sorting off" arms are
//! explored first (and win outright when the model is right).
//!
//! The crate is engine-only and deliberately knows nothing about the
//! simulation loop: `vpic-core` owns the driver that feeds it
//! measurements and applies the configs it returns, which keeps the state
//! machine deterministic and unit-testable with synthetic costs (no
//! wall-clock in tests).

pub mod config;
pub mod engine;
pub mod gpu;
pub mod measure;
pub mod prior;

pub use config::{config_space, tile_arms, Config, TileCfg, DEFAULT_INTERVALS};
pub use gpu::{gpu_cache_prior, gpu_config_space};
pub use engine::{Phase, Tuner, TunerState};
pub use measure::Measurement;
