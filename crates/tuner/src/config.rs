//! The discrete configuration space the tuner searches.

use pk::atomic::ScatterMode;
use psort::SortOrder;
use vsimd::Strategy;

/// Sort cadences swept by default (steps between sorts). VPIC decks
/// typically sort every ~20 steps; 5 and 50 bracket it.
pub const DEFAULT_INTERVALS: [usize; 3] = [5, 20, 50];

/// Tiled-execution setting carried by an arm: the tile size the engine
/// partitions cells into, and whether released tiles are compressed.
/// Pool size and spill location stay host policy (the simulation's tile
/// defaults), not search axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileCfg {
    /// Grid cells per tile.
    pub tile_cells: usize,
    /// Compress released tiles.
    pub compress: bool,
}

/// One arm of the search: a complete setting of the paper's tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Sorting order, or `None` to disable sorting (the cache-fit regime).
    pub order: Option<SortOrder>,
    /// Steps between sorts. Ignored when `order` is `None`.
    pub interval: usize,
    /// Vectorization strategy. One knob drives the whole step: the
    /// particle push *and* the grid-side field pipeline (interpolator
    /// load, curl sweeps, current unload) all dispatch on the
    /// simulation's single `strategy` field, so committing an arm
    /// retunes every kernel at once. All field-kernel strategies are
    /// bit-identical by construction, so the tuner's exploration never
    /// perturbs the physics.
    pub strategy: Strategy,
    /// Current-deposition scatter mode.
    pub scatter: ScatterMode,
    /// Tiled execution: `Some` streams the step tile-by-tile at this
    /// tile size / compression, `None` is the classic untiled path.
    /// Safe to explore: the tiled path is bit-identical to untiled, so
    /// swapping this mid-run never perturbs the physics. `order` and
    /// `interval` are inert while tiled (tiles keep their own order).
    pub tile: Option<TileCfg>,
}

impl Config {
    /// A conservative default arm: no sorting, portable strategy, atomic
    /// scatter.
    pub fn unsorted(strategy: Strategy, scatter: ScatterMode) -> Self {
        Self { order: None, interval: 0, strategy, scatter, tile: None }
    }

    /// Compact human-readable label, used as the key in `results/tune.json`
    /// (e.g. `"standard/i20/guided/atomic"`, `"unsorted/manual/dup"`, or
    /// `"unsorted/auto/atomic/t512c"` for a 512-cell compressed-tile arm).
    pub fn label(&self) -> String {
        let strat = match self.strategy {
            Strategy::Auto => "auto",
            Strategy::Guided => "guided",
            Strategy::Manual => "manual",
            Strategy::AdHoc => "adhoc",
        };
        let scatter = match self.scatter {
            ScatterMode::Atomic => "atomic",
            ScatterMode::Duplicated => "dup",
        };
        let base = match self.order {
            None => format!("unsorted/{strat}/{scatter}"),
            Some(o) => format!("{}/i{}/{strat}/{scatter}", o.name(), self.interval),
        };
        match self.tile {
            None => base,
            Some(t) => {
                format!("{base}/t{}{}", t.tile_cells, if t.compress { "c" } else { "r" })
            }
        }
    }
}

/// Expand `base` arms with tiled variants: for each base arm and each
/// tile size, a compressed and an uncompressed tile arm. The returned
/// vector keeps the untiled originals first, so an exhaustive sweep
/// still covers the classic path.
pub fn tile_arms(base: &[Config], tile_cells: &[usize]) -> Vec<Config> {
    let mut arms: Vec<Config> = base.to_vec();
    for cfg in base {
        for &cells in tile_cells {
            for compress in [true, false] {
                arms.push(Config {
                    tile: Some(TileCfg { tile_cells: cells, compress }),
                    ..*cfg
                });
            }
        }
    }
    arms
}

/// The full search space: {None, Standard, Strided, TiledStrided{tile}} ×
/// `intervals` × all four strategies × both scatter modes. The unsorted
/// arms carry no interval axis, so the space is
/// `(1 + 3·|intervals|) · 4 · 2` arms (80 at the default three
/// intervals). [`SortOrder::Random`] is deliberately excluded: re-shuffling
/// is never a performance optimization and its permutation is not a pure
/// function of the keys, which would break schedule-replay determinism.
pub fn config_space(tile: usize, intervals: &[usize]) -> Vec<Config> {
    let strategies = [Strategy::Auto, Strategy::Guided, Strategy::Manual, Strategy::AdHoc];
    let scatters = [ScatterMode::Atomic, ScatterMode::Duplicated];
    let mut arms = Vec::new();
    for &strategy in &strategies {
        for &scatter in &scatters {
            arms.push(Config::unsorted(strategy, scatter));
            for order in SortOrder::sorted_set(tile) {
                for &interval in intervals {
                    arms.push(Config {
                        order: Some(order),
                        interval,
                        strategy,
                        scatter,
                        tile: None,
                    });
                }
            }
        }
    }
    arms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_has_expected_size_and_no_random() {
        let arms = config_space(16, &DEFAULT_INTERVALS);
        assert_eq!(arms.len(), (1 + 3 * 3) * 4 * 2);
        assert!(arms.iter().all(|a| a.order != Some(SortOrder::Random)));
        // every arm is distinct
        for (i, a) in arms.iter().enumerate() {
            assert!(!arms[i + 1..].contains(a), "duplicate arm {}", a.label());
        }
    }

    #[test]
    fn labels_are_unique_and_stable() {
        let arms = config_space(8, &[5, 20]);
        let mut labels: Vec<String> = arms.iter().map(Config::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), arms.len());
        let c = Config {
            order: Some(SortOrder::Standard),
            interval: 20,
            strategy: Strategy::Guided,
            scatter: ScatterMode::Atomic,
            tile: None,
        };
        assert_eq!(c.label(), "standard/i20/guided/atomic");
        assert_eq!(
            Config::unsorted(Strategy::Manual, ScatterMode::Duplicated).label(),
            "unsorted/manual/dup"
        );
        assert_eq!(
            Config {
                tile: Some(TileCfg { tile_cells: 512, compress: true }),
                ..Config::unsorted(Strategy::Auto, ScatterMode::Atomic)
            }
            .label(),
            "unsorted/auto/atomic/t512c"
        );
    }

    #[test]
    fn tile_arms_expand_each_base_by_size_and_compression() {
        let base = [
            Config::unsorted(Strategy::Auto, ScatterMode::Atomic),
            Config::unsorted(Strategy::Manual, ScatterMode::Duplicated),
        ];
        let arms = tile_arms(&base, &[256, 1024]);
        // 2 untiled originals + 2 bases × 2 sizes × {compressed, raw}
        assert_eq!(arms.len(), 2 + 2 * 2 * 2);
        assert_eq!(&arms[..2], &base);
        assert!(arms[2..].iter().all(|a| a.tile.is_some()));
        let mut labels: Vec<String> = arms.iter().map(Config::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), arms.len());
    }
}
