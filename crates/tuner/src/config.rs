//! The discrete configuration space the tuner searches.

use pk::atomic::ScatterMode;
use psort::SortOrder;
use vsimd::Strategy;

/// Sort cadences swept by default (steps between sorts). VPIC decks
/// typically sort every ~20 steps; 5 and 50 bracket it.
pub const DEFAULT_INTERVALS: [usize; 3] = [5, 20, 50];

/// One arm of the search: a complete setting of the paper's tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Sorting order, or `None` to disable sorting (the cache-fit regime).
    pub order: Option<SortOrder>,
    /// Steps between sorts. Ignored when `order` is `None`.
    pub interval: usize,
    /// Vectorization strategy. One knob drives the whole step: the
    /// particle push *and* the grid-side field pipeline (interpolator
    /// load, curl sweeps, current unload) all dispatch on the
    /// simulation's single `strategy` field, so committing an arm
    /// retunes every kernel at once. All field-kernel strategies are
    /// bit-identical by construction, so the tuner's exploration never
    /// perturbs the physics.
    pub strategy: Strategy,
    /// Current-deposition scatter mode.
    pub scatter: ScatterMode,
}

impl Config {
    /// A conservative default arm: no sorting, portable strategy, atomic
    /// scatter.
    pub fn unsorted(strategy: Strategy, scatter: ScatterMode) -> Self {
        Self { order: None, interval: 0, strategy, scatter }
    }

    /// Compact human-readable label, used as the key in `results/tune.json`
    /// (e.g. `"standard/i20/guided/atomic"` or `"unsorted/manual/dup"`).
    pub fn label(&self) -> String {
        let strat = match self.strategy {
            Strategy::Auto => "auto",
            Strategy::Guided => "guided",
            Strategy::Manual => "manual",
            Strategy::AdHoc => "adhoc",
        };
        let scatter = match self.scatter {
            ScatterMode::Atomic => "atomic",
            ScatterMode::Duplicated => "dup",
        };
        match self.order {
            None => format!("unsorted/{strat}/{scatter}"),
            Some(o) => format!("{}/i{}/{strat}/{scatter}", o.name(), self.interval),
        }
    }
}

/// The full search space: {None, Standard, Strided, TiledStrided{tile}} ×
/// `intervals` × all four strategies × both scatter modes. The unsorted
/// arms carry no interval axis, so the space is
/// `(1 + 3·|intervals|) · 4 · 2` arms (80 at the default three
/// intervals). [`SortOrder::Random`] is deliberately excluded: re-shuffling
/// is never a performance optimization and its permutation is not a pure
/// function of the keys, which would break schedule-replay determinism.
pub fn config_space(tile: usize, intervals: &[usize]) -> Vec<Config> {
    let strategies = [Strategy::Auto, Strategy::Guided, Strategy::Manual, Strategy::AdHoc];
    let scatters = [ScatterMode::Atomic, ScatterMode::Duplicated];
    let mut arms = Vec::new();
    for &strategy in &strategies {
        for &scatter in &scatters {
            arms.push(Config::unsorted(strategy, scatter));
            for order in SortOrder::sorted_set(tile) {
                for &interval in intervals {
                    arms.push(Config { order: Some(order), interval, strategy, scatter });
                }
            }
        }
    }
    arms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_has_expected_size_and_no_random() {
        let arms = config_space(16, &DEFAULT_INTERVALS);
        assert_eq!(arms.len(), (1 + 3 * 3) * 4 * 2);
        assert!(arms.iter().all(|a| a.order != Some(SortOrder::Random)));
        // every arm is distinct
        for (i, a) in arms.iter().enumerate() {
            assert!(!arms[i + 1..].contains(a), "duplicate arm {}", a.label());
        }
    }

    #[test]
    fn labels_are_unique_and_stable() {
        let arms = config_space(8, &[5, 20]);
        let mut labels: Vec<String> = arms.iter().map(Config::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), arms.len());
        let c = Config {
            order: Some(SortOrder::Standard),
            interval: 20,
            strategy: Strategy::Guided,
            scatter: ScatterMode::Atomic,
        };
        assert_eq!(c.label(), "standard/i20/guided/atomic");
        assert_eq!(
            Config::unsorted(Strategy::Manual, ScatterMode::Duplicated).label(),
            "unsorted/manual/dup"
        );
    }
}
