//! The explore → commit → drift state machine.

use crate::config::Config;
use crate::measure::Measurement;

/// Where the tuner is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Measuring candidate arms one epoch at a time.
    Exploring,
    /// Re-measuring the top arms of the exploration pass (enabled by
    /// [`Tuner::with_refinement`]) before committing.
    Refining,
    /// Running the winning arm, watching for drift.
    Committed,
}

/// Relative change in the crossing-rate EWMA (vs. the rate at commit
/// time) that triggers re-exploration.
const DRIFT_TOLERANCE: f64 = 0.5;

/// Committed-cost regression factor that triggers re-exploration even
/// when the crossing rate looks stable.
const COST_TOLERANCE: f64 = 1.5;

/// EWMA smoothing for the committed-phase crossing rate.
const EWMA_ALPHA: f64 = 0.5;

/// Consecutive truncated epochs re-measured before a result is accepted
/// anyway (so pathological telemetry pressure cannot stall the search).
const MAX_TRUNCATED_RETRIES: u32 = 2;

/// The epoch-based auto-tuner. Feed it one [`Measurement`] per epoch via
/// [`Tuner::finish_epoch`]; run whatever [`Tuner::current`] says in
/// between. The struct is pure state — it never reads a clock — so its
/// decisions are a deterministic function of the measurements it is fed.
#[derive(Debug, Clone)]
pub struct Tuner {
    arms: Vec<Config>,
    epoch_steps: usize,
    phase: Phase,
    /// Index of the arm being measured (Exploring) or run (Committed).
    cursor: usize,
    /// Cost per particle of each measured arm this exploration round.
    costs: Vec<Option<f64>>,
    /// Crossing rate observed while measuring each arm.
    rates: Vec<f64>,
    committed_cost: f64,
    /// Crossing rate at commit time; the drift baseline.
    baseline_rate: f64,
    /// Committed-phase crossing-rate EWMA.
    rate_ewma: f64,
    /// How many of the best-explored arms get a second measurement epoch
    /// before committing (0 disables refinement).
    refine_top: usize,
    /// Arm indices still queued for refinement.
    refine_queue: Vec<usize>,
    retries: u32,
    truncated_epochs: u64,
    explorations: u64,
}

/// The complete serializable state of a [`Tuner`]: every field
/// [`Tuner::finish_epoch`] reads or writes, with public fields so a
/// checkpoint layer can encode it without this crate knowing the format.
/// Round trip: [`Tuner::state`] → persist → [`Tuner::from_state`]. The
/// engine is pure (no wall clock), so a restored tuner fed the same
/// measurements makes the same decisions as the original — the property
/// `tests/checkpoint_restart.rs` leans on.
#[derive(Debug, Clone, PartialEq)]
pub struct TunerState {
    /// Candidate arms, in exploration order.
    pub arms: Vec<Config>,
    /// Steps per measurement epoch.
    pub epoch_steps: usize,
    /// Lifecycle phase.
    pub phase: Phase,
    /// Arm being measured (Exploring/Refining) or run (Committed).
    pub cursor: usize,
    /// Per-arm cost measured this exploration round.
    pub costs: Vec<Option<f64>>,
    /// Per-arm crossing rate measured this exploration round.
    pub rates: Vec<f64>,
    /// Cost of the committed arm at commit time.
    pub committed_cost: f64,
    /// Crossing rate at commit time (drift baseline).
    pub baseline_rate: f64,
    /// Committed-phase crossing-rate EWMA.
    pub rate_ewma: f64,
    /// Top-N refinement budget.
    pub refine_top: usize,
    /// Arm indices still queued for refinement.
    pub refine_queue: Vec<usize>,
    /// Consecutive truncated-epoch retries used on the current arm.
    pub retries: u32,
    /// Lifetime count of truncated epochs.
    pub truncated_epochs: u64,
    /// Exploration rounds started.
    pub explorations: u64,
}

impl Tuner {
    /// A tuner over `arms`, measuring each for `epoch_steps` simulation
    /// steps. Exploration visits arms in order, so the caller controls
    /// the prior by ordering (see [`Tuner::with_cache_prior`]).
    pub fn new(arms: Vec<Config>, epoch_steps: usize) -> Self {
        assert!(!arms.is_empty(), "tuner needs at least one arm");
        assert!(epoch_steps > 0, "epochs must contain at least one step");
        let n = arms.len();
        Self {
            arms,
            epoch_steps,
            phase: Phase::Exploring,
            cursor: 0,
            costs: vec![None; n],
            rates: vec![0.0; n],
            committed_cost: f64::INFINITY,
            baseline_rate: 0.0,
            rate_ewma: 0.0,
            refine_top: 0,
            refine_queue: Vec::new(),
            explorations: 1,
            retries: 0,
            truncated_epochs: 0,
        }
    }

    /// After the exploration pass, re-measure the `top` cheapest arms for
    /// one more epoch each and keep each arm's *minimum* cost before
    /// committing. Wall-clock noise is one-sided — a preempted epoch can
    /// only make an arm look slower, never faster — so the minimum of two
    /// epochs is the sharper estimate of an arm's true cost, and ranking
    /// the contenders by it costs only `top` extra epochs.
    pub fn with_refinement(mut self, top: usize) -> Self {
        self.refine_top = top;
        self
    }

    /// Apply the cache-model prior (the paper's superlinear-scaling
    /// heuristic, computed by [`crate::prior::prefer_unsorted`]): when the
    /// grid's push working set fits the LLC, the unsorted arms are
    /// explored first; otherwise the sorting arms are. Ordering is what
    /// the prior controls — under a short exploration budget the tuner
    /// commits to the best arm *measured so far*, so the prior's arms get
    /// first claim on the budget. The reorder is stable within each group.
    pub fn with_cache_prior(mut self, grid_fits_llc: bool) -> Self {
        self.arms.sort_by_key(|a| {
            let unsorted = a.order.is_none();
            if grid_fits_llc {
                !unsorted as u8
            } else {
                unsorted as u8
            }
        });
        self
    }

    /// Steps per measurement epoch.
    pub fn epoch_steps(&self) -> usize {
        self.epoch_steps
    }

    /// The configuration to run right now.
    pub fn current(&self) -> &Config {
        &self.arms[self.cursor]
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The committed arm, if the tuner has converged.
    pub fn committed(&self) -> Option<&Config> {
        (self.phase == Phase::Committed).then(|| &self.arms[self.cursor])
    }

    /// Best (config, cost-per-particle) measured so far, if any.
    pub fn best(&self) -> Option<(&Config, f64)> {
        self.costs
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.map(|c| (i, c)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, c)| (&self.arms[i], c))
    }

    /// Epochs whose telemetry window reported dropped events.
    pub fn truncated_epochs(&self) -> u64 {
        self.truncated_epochs
    }

    /// Exploration rounds started (1 initially; +1 per drift restart).
    pub fn explorations(&self) -> u64 {
        self.explorations
    }

    /// Export the complete engine state for checkpointing.
    pub fn state(&self) -> TunerState {
        TunerState {
            arms: self.arms.clone(),
            epoch_steps: self.epoch_steps,
            phase: self.phase,
            cursor: self.cursor,
            costs: self.costs.clone(),
            rates: self.rates.clone(),
            committed_cost: self.committed_cost,
            baseline_rate: self.baseline_rate,
            rate_ewma: self.rate_ewma,
            refine_top: self.refine_top,
            refine_queue: self.refine_queue.clone(),
            retries: self.retries,
            truncated_epochs: self.truncated_epochs,
            explorations: self.explorations,
        }
    }

    /// Rebuild a tuner from checkpointed state. Internal-consistency
    /// violations (empty arm set, cursor or refine queue out of range,
    /// mismatched per-arm vector lengths) are rejected so a drifted
    /// snapshot cannot resurrect an engine that would index out of
    /// bounds on its next epoch.
    pub fn from_state(s: TunerState) -> Result<Self, String> {
        if s.arms.is_empty() {
            return Err("tuner state has no arms".into());
        }
        if s.epoch_steps == 0 {
            return Err("tuner state has zero epoch_steps".into());
        }
        let n = s.arms.len();
        if s.cursor >= n {
            return Err(format!("tuner cursor {} out of range for {n} arms", s.cursor));
        }
        if s.costs.len() != n || s.rates.len() != n {
            return Err(format!(
                "per-arm vectors sized {}/{} for {n} arms",
                s.costs.len(),
                s.rates.len()
            ));
        }
        if let Some(&bad) = s.refine_queue.iter().find(|&&i| i >= n) {
            return Err(format!("refine queue entry {bad} out of range for {n} arms"));
        }
        Ok(Self {
            arms: s.arms,
            epoch_steps: s.epoch_steps,
            phase: s.phase,
            cursor: s.cursor,
            costs: s.costs,
            rates: s.rates,
            committed_cost: s.committed_cost,
            baseline_rate: s.baseline_rate,
            rate_ewma: s.rate_ewma,
            refine_top: s.refine_top,
            refine_queue: s.refine_queue,
            retries: s.retries,
            truncated_epochs: s.truncated_epochs,
            explorations: s.explorations,
        })
    }

    /// Ingest the epoch that just ran under [`Tuner::current`] and return
    /// the configuration for the next epoch.
    pub fn finish_epoch(&mut self, m: &Measurement) -> Config {
        if m.truncated {
            self.truncated_epochs += 1;
            if self.retries < MAX_TRUNCATED_RETRIES {
                // telemetry dropped events inside this window, so the
                // timings undercount: re-measure the same arm rather
                // than scoring it on bad data
                self.retries += 1;
                return self.arms[self.cursor];
            }
        }
        self.retries = 0;
        match self.phase {
            Phase::Exploring => {
                let interval = self.arms[self.cursor].interval;
                self.costs[self.cursor] = Some(m.cost_per_particle(interval));
                self.rates[self.cursor] = m.crossing_rate();
                if self.cursor + 1 < self.arms.len() {
                    self.cursor += 1;
                } else if self.refine_top > 0 {
                    self.start_refinement();
                } else {
                    self.commit();
                }
            }
            Phase::Refining => {
                let interval = self.arms[self.cursor].interval;
                let cost = m.cost_per_particle(interval);
                if cost < self.costs[self.cursor].unwrap_or(f64::INFINITY) {
                    self.costs[self.cursor] = Some(cost);
                    self.rates[self.cursor] = m.crossing_rate();
                }
                self.refine_queue.remove(0);
                match self.refine_queue.first() {
                    Some(&next) => self.cursor = next,
                    None => self.commit(),
                }
            }
            Phase::Committed => {
                let cost = m.cost_per_particle(self.arms[self.cursor].interval);
                let rate = m.crossing_rate();
                self.rate_ewma = (1.0 - EWMA_ALPHA) * self.rate_ewma + EWMA_ALPHA * rate;
                let base = self.baseline_rate.max(1e-12);
                let drifted = (self.rate_ewma - self.baseline_rate).abs() / base > DRIFT_TOLERANCE;
                let regressed =
                    self.committed_cost.is_finite() && cost > self.committed_cost * COST_TOLERANCE;
                if drifted || regressed {
                    self.reexplore();
                }
            }
        }
        self.arms[self.cursor]
    }

    fn start_refinement(&mut self) {
        let mut ranked: Vec<(usize, f64)> = self
            .costs
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.map(|c| (i, c)))
            .filter(|(_, c)| c.is_finite())
            .collect();
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
        self.refine_queue = ranked.iter().take(self.refine_top).map(|&(i, _)| i).collect();
        match self.refine_queue.first() {
            Some(&first) => {
                self.cursor = first;
                self.phase = Phase::Refining;
            }
            None => self.commit(),
        }
    }

    fn commit(&mut self) {
        let best = self
            .costs
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.map(|c| (i, c)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.cursor = best;
        self.committed_cost = self.costs[best].unwrap_or(f64::INFINITY);
        self.baseline_rate = self.rates[best];
        self.rate_ewma = self.baseline_rate;
        self.phase = Phase::Committed;
    }

    fn reexplore(&mut self) {
        self.phase = Phase::Exploring;
        self.cursor = 0;
        self.costs = vec![None; self.arms.len()];
        self.rates = vec![0.0; self.arms.len()];
        self.refine_queue.clear();
        self.committed_cost = f64::INFINITY;
        self.explorations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pk::atomic::ScatterMode;
    use psort::SortOrder;
    use vsimd::Strategy;

    fn arm(order: Option<SortOrder>, interval: usize) -> Config {
        Config { order, interval, strategy: Strategy::Auto, scatter: ScatterMode::Atomic, tile: None }
    }

    /// Deterministic synthetic epoch: `ns_per_step` of push plus one
    /// `sort_ns` sort, over 10 steps × 100 particles.
    fn epoch(ns_per_step: u64, sort_ns: u64, crossings: u64) -> Measurement {
        Measurement {
            steps: 10,
            pushed: 1000,
            crossings,
            step_ns: 10 * ns_per_step + sort_ns,
            sort_ns,
            sorts: u64::from(sort_ns > 0),
            truncated: false,
        }
    }

    fn three_arm_tuner() -> Tuner {
        Tuner::new(
            vec![
                arm(None, 0),
                arm(Some(SortOrder::Standard), 5),
                arm(Some(SortOrder::Strided), 20),
            ],
            10,
        )
    }

    #[test]
    fn selects_the_known_best_arm() {
        let mut t = three_arm_tuner();
        assert_eq!(t.phase(), Phase::Exploring);
        // unsorted: 800 ns/step; standard/i5: 500 + 1000/5 = 700;
        // strided/i20: 600 + 1000/20 = 650 ← best
        assert_eq!(t.current().order, None);
        t.finish_epoch(&epoch(800, 0, 100));
        assert_eq!(t.current().order, Some(SortOrder::Standard));
        t.finish_epoch(&epoch(500, 1000, 100));
        assert_eq!(t.current().order, Some(SortOrder::Strided));
        let next = t.finish_epoch(&epoch(600, 1000, 100));
        assert_eq!(t.phase(), Phase::Committed);
        assert_eq!(next.order, Some(SortOrder::Strided));
        assert_eq!(t.committed().unwrap().order, Some(SortOrder::Strided));
        let (best, cost) = t.best().unwrap();
        assert_eq!(best.order, Some(SortOrder::Strided));
        assert!((cost - 6.5).abs() < 1e-12);
    }

    #[test]
    fn amortization_beats_raw_epoch_cost() {
        // standard/i50's epoch contains one forced sort in 10 steps; raw
        // epoch time would charge it at 1/10 and pick unsorted, but the
        // amortized model charges 1/50 and correctly prefers sorting
        let mut t = Tuner::new(vec![arm(None, 0), arm(Some(SortOrder::Standard), 50)], 10);
        t.finish_epoch(&epoch(700, 0, 100));
        t.finish_epoch(&epoch(600, 3000, 100)); // 600 + 3000/50 = 660 < 700
        assert_eq!(t.committed().unwrap().order, Some(SortOrder::Standard));
    }

    #[test]
    fn drift_in_crossing_rate_triggers_reexploration() {
        let mut t = three_arm_tuner();
        for _ in 0..3 {
            t.finish_epoch(&epoch(600, 500, 100));
        }
        assert_eq!(t.phase(), Phase::Committed);
        assert_eq!(t.explorations(), 1);
        // same cost, stable crossings: stays committed
        t.finish_epoch(&epoch(600, 500, 100));
        assert_eq!(t.phase(), Phase::Committed);
        // crossing rate jumps 60%: the EWMA damps the first epochs (one
        // noisy epoch must not throw away a converged config) but a
        // sustained shift crosses the drift threshold
        t.finish_epoch(&epoch(600, 500, 160));
        assert_eq!(t.phase(), Phase::Committed, "one shifted epoch is absorbed");
        t.finish_epoch(&epoch(600, 500, 160));
        assert_eq!(t.phase(), Phase::Committed);
        t.finish_epoch(&epoch(600, 500, 160));
        assert_eq!(t.phase(), Phase::Exploring, "sustained drift re-explores");
        assert_eq!(t.explorations(), 2);
        assert_eq!(t.current(), &t.arms[0], "re-exploration restarts from the first arm");
    }

    #[test]
    fn refinement_remeasures_contenders_and_keeps_the_min() {
        let mut t = three_arm_tuner().with_refinement(2);
        t.finish_epoch(&epoch(700, 0, 100)); // arm0: 7.0
        t.finish_epoch(&epoch(500, 500, 100)); // arm1 (i5): 5.0 + 1.0 = 6.0
        t.finish_epoch(&epoch(775, 500, 100)); // arm2 (i20): 7.75 + 0.25 = 8.0
        // all arms explored: the top 2 get a second epoch, cheapest first
        assert_eq!(t.phase(), Phase::Refining);
        assert_eq!(t.current(), &t.arms[1]);
        // arm1's re-measure is much slower — its min stays 6.0
        t.finish_epoch(&epoch(900, 500, 100));
        assert_eq!(t.phase(), Phase::Refining);
        assert_eq!(t.current(), &t.arms[0]);
        // arm0's re-measure comes in at 5.5: the sharper estimate wins
        t.finish_epoch(&epoch(550, 0, 100));
        assert_eq!(t.phase(), Phase::Committed);
        assert_eq!(t.committed(), Some(&t.arms[0]));
        let (_, cost) = t.best().unwrap();
        assert!((cost - 5.5).abs() < 1e-12, "{cost}");
    }

    #[test]
    fn committed_cost_regression_triggers_reexploration() {
        let mut t = three_arm_tuner();
        for _ in 0..3 {
            t.finish_epoch(&epoch(600, 500, 100));
        }
        assert_eq!(t.phase(), Phase::Committed);
        // crossings stable but the committed arm got 2× slower
        t.finish_epoch(&epoch(1300, 500, 100));
        assert_eq!(t.phase(), Phase::Exploring);
    }

    #[test]
    fn truncated_epochs_are_retried_not_scored() {
        let mut t = three_arm_tuner();
        let first = *t.current();
        let bad = Measurement { truncated: true, ..epoch(100, 0, 100) };
        // a truncated epoch re-runs the same arm instead of scoring the
        // suspiciously cheap measurement
        assert_eq!(t.finish_epoch(&bad), first);
        assert_eq!(t.truncated_epochs(), 1);
        assert_eq!(t.phase(), Phase::Exploring);
        assert!(t.best().is_none(), "truncated data must not be scored");
        // a clean re-measure proceeds to the next arm
        let second = t.finish_epoch(&epoch(800, 0, 100));
        assert_ne!(second, first);
        // persistent truncation is eventually accepted rather than stalling
        let mut t2 = three_arm_tuner();
        for _ in 0..=MAX_TRUNCATED_RETRIES {
            t2.finish_epoch(&bad);
        }
        assert!(t2.best().is_some(), "bounded retries: the search must advance");
    }

    #[test]
    fn state_round_trip_preserves_decisions() {
        // freeze a tuner mid-refinement, round-trip its state, and feed
        // both copies the same epochs: every decision must match
        let mut a = three_arm_tuner().with_refinement(2);
        a.finish_epoch(&epoch(700, 0, 100));
        a.finish_epoch(&epoch(500, 500, 100));
        a.finish_epoch(&epoch(775, 500, 100));
        assert_eq!(a.phase(), Phase::Refining);
        let mut b = Tuner::from_state(a.state()).expect("valid state");
        assert_eq!(a.state(), b.state());
        for m in [epoch(900, 500, 100), epoch(550, 0, 100), epoch(560, 0, 100)] {
            assert_eq!(a.finish_epoch(&m), b.finish_epoch(&m));
            assert_eq!(a.phase(), b.phase());
            assert_eq!(a.state(), b.state());
        }
        assert_eq!(a.phase(), Phase::Committed);
    }

    #[test]
    fn inconsistent_state_is_rejected() {
        let good = three_arm_tuner().state();
        let empty = TunerState { arms: Vec::new(), ..good.clone() };
        assert!(Tuner::from_state(empty).is_err());
        let bad_cursor = TunerState { cursor: 3, ..good.clone() };
        assert!(Tuner::from_state(bad_cursor).is_err());
        let bad_lens = TunerState { costs: vec![None; 1], ..good.clone() };
        assert!(Tuner::from_state(bad_lens).is_err());
        let bad_queue = TunerState { refine_queue: vec![9], ..good.clone() };
        assert!(Tuner::from_state(bad_queue).is_err());
        let no_epochs = TunerState { epoch_steps: 0, ..good };
        assert!(Tuner::from_state(no_epochs).is_err());
    }

    #[test]
    fn cache_prior_orders_exploration() {
        let arms = crate::config_space(16, &[5, 20]);
        let fits = Tuner::new(arms.clone(), 10).with_cache_prior(true);
        assert!(fits.current().order.is_none(), "fits-in-LLC prior starts unsorted");
        let n_unsorted = arms.iter().filter(|a| a.order.is_none()).count();
        assert!(fits.arms[..n_unsorted].iter().all(|a| a.order.is_none()));
        let spills = Tuner::new(arms, 10).with_cache_prior(false);
        assert!(spills.current().order.is_some(), "spills-LLC prior starts sorting");
    }
}
