//! The GPU arm space: sort orders × Table-1 GPU platforms.
//!
//! On a GPU the paper's tuning problem collapses to one axis: *which sort
//! order* (Figs 6–8). Vectorization strategy is meaningless (the device
//! compiler owns the lanes) and the deposition scatter is always atomic
//! (`ScatterView` duplication doesn't pay at 10⁴-thread concurrency), so
//! the GPU space is [`psort::SortOrder::gpu_arm_set`] × sort cadence —
//! small enough to sweep exhaustively in one epoch each.
//!
//! The arms are ordinary [`Config`]s: the same [`crate::Tuner`] engine
//! explores them, scored by modeled per-step cost from a `pk::SimGpu`
//! ledger instead of wall time ([`crate::Measurement`] carries
//! nanoseconds; modeled seconds × 1e9 slot straight in, since the engine
//! only ever compares costs). The cache prior is the particle-aware LLC
//! predicate — on GPUs the resident particle window shares the LLC with
//! the grid, so the grid-only predicate would call the cliff too early.

use crate::config::Config;
use crate::prior::prefer_unsorted_with_particles;
use memsim::platform::Platform;
use pk::atomic::ScatterMode;
use psort::SortOrder;
use vsimd::Strategy;

/// The GPU configuration space: `{unsorted, standard, strided,
/// tiled-strided(tile)}` × `intervals`. Unsorted arms come first so a
/// cache prior that prefers them is honored by arm order even before
/// [`crate::Tuner::with_cache_prior`] reorders.
pub fn gpu_config_space(tile: usize, intervals: &[usize]) -> Vec<Config> {
    let mut arms = Vec::new();
    for order in SortOrder::gpu_arm_set(tile) {
        match order {
            None => arms.push(Config::unsorted(Strategy::Auto, ScatterMode::Atomic)),
            Some(o) => {
                for &interval in intervals {
                    arms.push(Config {
                        order: Some(o),
                        interval,
                        strategy: Strategy::Auto,
                        scatter: ScatterMode::Atomic,
                        tile: None,
                    });
                }
            }
        }
    }
    arms
}

/// The GPU cache prior for [`crate::Tuner::with_cache_prior`]: true when
/// `cells` of grid data *plus* `resident_particles` records fit the
/// platform LLC, in which case the unsorted arms are explored first.
pub fn gpu_cache_prior(platform: &Platform, cells: usize, resident_particles: usize) -> bool {
    prefer_unsorted_with_particles(platform, cells, resident_particles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::platform::by_name;

    #[test]
    fn gpu_space_is_one_axis_per_order() {
        let arms = gpu_config_space(216, &[5, 20]);
        // 1 unsorted + 3 orders × 2 intervals
        assert_eq!(arms.len(), 1 + 3 * 2);
        assert!(arms[0].order.is_none());
        assert!(arms.iter().all(|a| a.strategy == Strategy::Auto));
        assert!(arms.iter().all(|a| a.scatter == ScatterMode::Atomic));
        assert!(arms.iter().all(|a| a.tile.is_none()));
        assert!(arms.iter().all(|a| a.order != Some(SortOrder::Random)));
        // distinct labels (the tuner keys results by them)
        let mut labels: Vec<String> = arms.iter().map(Config::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), arms.len());
    }

    #[test]
    fn gpu_prior_counts_resident_particles() {
        // V100: the Fig 9 peak grid fits bare, but not once the resident
        // particle window is charged at 64 ppc
        let v100 = by_name("V100").unwrap();
        assert!(gpu_cache_prior(&v100, 13_824, 0));
        assert!(!gpu_cache_prior(&v100, 13_824, 64 * 13_824));
    }

    #[test]
    fn prior_seeds_gpu_arms_unsorted_first() {
        let v100 = by_name("V100").unwrap();
        let arms = gpu_config_space(216, &crate::DEFAULT_INTERVALS);
        let t = crate::Tuner::new(arms, 4)
            .with_cache_prior(gpu_cache_prior(&v100, 13_824, 0));
        assert!(t.current().order.is_none());
    }
}
