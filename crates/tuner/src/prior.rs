//! The cache-model prior: one footprint predicate shared with
//! `cluster::scaling`.
//!
//! The paper's §6 superlinear strong scaling comes from the per-rank grid
//! shrinking until its push working set (interpolators + accumulators)
//! fits in last-level cache, at which point gather/scatter traffic stops
//! going to DRAM and sorting particles buys almost nothing. The
//! strong-scaling model marks that regime with
//! [`memsim::push::grid_fits_llc`]; the live tuner seeds its search from
//! the *same* function so the model and the runtime can never disagree
//! about where the cliff is.

use memsim::platform::Platform;

/// True when the modelled push working set of `cells` grid cells fits the
/// platform's LLC — in which case the tuner explores the "sorting off"
/// arms first (see [`crate::Tuner::with_cache_prior`]).
pub fn prefer_unsorted(platform: &Platform, cells: usize) -> bool {
    memsim::push::grid_fits_llc(platform, cells)
}

/// Particle-bytes-aware variant of [`prefer_unsorted`]: counts the
/// resident particle records alongside the grid's per-cell data, so a
/// cache-sized grid drowning in particles still reads as out-of-cache
/// (and the tuner keeps the sorted and tiled arms in play).
pub fn prefer_unsorted_with_particles(
    platform: &Platform,
    cells: usize,
    particles: usize,
) -> bool {
    memsim::push::fits_llc_with_particles(platform, cells, particles)
}

/// The platform-derived tile-size axis for the tuner's tiled arms: the
/// LLC-sized tile from [`memsim::push::llc_tile_cells`] bracketed by
/// half and double, deduplicated. Feed the result to
/// [`crate::config::tile_arms`].
pub fn tile_cells_axis(platform: &Platform, ppc: usize) -> Vec<usize> {
    let t = memsim::push::llc_tile_cells(platform, ppc);
    let mut axis = vec![(t / 2).max(1), t, t * 2];
    axis.dedup();
    axis
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::platform::by_name;

    #[test]
    fn prior_matches_memsim_platform_data() {
        // V100 (6 MB LLC): the Fig 9 peak grid of 13,824 cells fits —
        // prior says run unsorted; a 2× refinement spills
        let v100 = by_name("V100").unwrap();
        assert!(prefer_unsorted(&v100, 24 * 24 * 24));
        assert!(!prefer_unsorted(&v100, 48 * 24 * 24 * 2));
        // EPYC 7763 (256 MB L3) keeps even large grids resident
        let milan = by_name("EPYC 7763").unwrap();
        assert!(prefer_unsorted(&milan, 64 * 64 * 64));
        // A100 (40 MB): between the two
        let a100 = by_name("A100").unwrap();
        assert!(prefer_unsorted(&a100, 44 * 44 * 44));
        assert!(!prefer_unsorted(&a100, 64 * 64 * 64));
    }

    #[test]
    fn particle_aware_prior_matches_table1_platforms() {
        // V100: the Fig 9 peak grid fits bare but not at 64 ppc
        let v100 = by_name("V100").unwrap();
        assert!(prefer_unsorted_with_particles(&v100, 13_824, 0));
        assert!(!prefer_unsorted_with_particles(&v100, 13_824, 64 * 13_824));
        // EPYC 7763 (256 MB L3): same population stays resident
        let milan = by_name("EPYC 7763").unwrap();
        assert!(prefer_unsorted_with_particles(&milan, 13_824, 64 * 13_824));
        // zero particles degenerates to the grid-only prior
        for p in [&v100, &milan] {
            for cells in [1_000usize, 13_824, 500_000] {
                assert_eq!(
                    prefer_unsorted_with_particles(p, cells, 0),
                    prefer_unsorted(p, cells)
                );
            }
        }
    }

    #[test]
    fn tile_axis_brackets_the_llc_tile_and_feeds_tile_arms() {
        let v100 = by_name("V100").unwrap();
        let axis = tile_cells_axis(&v100, 4);
        let t = memsim::push::llc_tile_cells(&v100, 4);
        assert_eq!(axis, vec![t / 2, t, t * 2]);
        let base = [crate::Config::unsorted(
            vsimd::Strategy::Auto,
            pk::atomic::ScatterMode::Atomic,
        )];
        let arms = crate::tile_arms(&base, &axis);
        // 1 untiled + 3 sizes × {compressed, raw}
        assert_eq!(arms.len(), 1 + 3 * 2);
        assert!(arms[1..].iter().all(|a| a.tile.is_some()));
    }

    #[test]
    fn prior_seeds_the_tuner_with_sorting_off() {
        // the acceptance-criteria wiring: platform data → prior → first
        // explored arm has sorting disabled
        let v100 = by_name("V100").unwrap();
        let arms = crate::config_space(16, &crate::DEFAULT_INTERVALS);
        let t = crate::Tuner::new(arms, 10).with_cache_prior(prefer_unsorted(&v100, 13_824));
        assert!(t.current().order.is_none());
    }
}
