//! The cache-model prior: one footprint predicate shared with
//! `cluster::scaling`.
//!
//! The paper's §6 superlinear strong scaling comes from the per-rank grid
//! shrinking until its push working set (interpolators + accumulators)
//! fits in last-level cache, at which point gather/scatter traffic stops
//! going to DRAM and sorting particles buys almost nothing. The
//! strong-scaling model marks that regime with
//! [`memsim::push::grid_fits_llc`]; the live tuner seeds its search from
//! the *same* function so the model and the runtime can never disagree
//! about where the cliff is.

use memsim::platform::Platform;

/// True when the modelled push working set of `cells` grid cells fits the
/// platform's LLC — in which case the tuner explores the "sorting off"
/// arms first (see [`crate::Tuner::with_cache_prior`]).
pub fn prefer_unsorted(platform: &Platform, cells: usize) -> bool {
    memsim::push::grid_fits_llc(platform, cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::platform::by_name;

    #[test]
    fn prior_matches_memsim_platform_data() {
        // V100 (6 MB LLC): the Fig 9 peak grid of 13,824 cells fits —
        // prior says run unsorted; a 2× refinement spills
        let v100 = by_name("V100").unwrap();
        assert!(prefer_unsorted(&v100, 24 * 24 * 24));
        assert!(!prefer_unsorted(&v100, 48 * 24 * 24 * 2));
        // EPYC 7763 (256 MB L3) keeps even large grids resident
        let milan = by_name("EPYC 7763").unwrap();
        assert!(prefer_unsorted(&milan, 64 * 64 * 64));
        // A100 (40 MB): between the two
        let a100 = by_name("A100").unwrap();
        assert!(prefer_unsorted(&a100, 44 * 44 * 44));
        assert!(!prefer_unsorted(&a100, 64 * 64 * 64));
    }

    #[test]
    fn prior_seeds_the_tuner_with_sorting_off() {
        // the acceptance-criteria wiring: platform data → prior → first
        // explored arm has sorting disabled
        let v100 = by_name("V100").unwrap();
        let arms = crate::config_space(16, &crate::DEFAULT_INTERVALS);
        let t = crate::Tuner::new(arms, 10).with_cache_prior(prefer_unsorted(&v100, 13_824));
        assert!(t.current().order.is_none());
    }
}
