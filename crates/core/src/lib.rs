//! # vpic-core — the particle-in-cell plasma simulation
//!
//! A from-scratch reproduction of the VPIC application structure (Bowers
//! et al. 2008) that the paper optimizes: a 3-D Yee-mesh electromagnetic
//! FDTD field solve, relativistic Boris particle push driven by per-cell
//! 18-coefficient interpolators, charge-conserving current deposition
//! through per-cell 12-slot accumulators, and periodic boundaries.
//!
//! The units are normalized (c = 1, unit cells): field quantities carry
//! `cdt/dx`-style factors directly, as VPIC's internal representation
//! does. Particles use VPIC's storage: a cell index plus cell-relative
//! offsets in `[-1, 1]` — the layout that makes *sorting by cell index*
//! (the paper's data-movement optimization) meaningful.
//!
//! ## Map to the paper
//!
//! * [`push`] — the particle push kernel, in all four vectorization
//!   strategies (Fig 4) and over any particle order (Figs 7–9).
//! * [`interp`] — the 18-float interpolator records the push gathers.
//! * [`accumulate`] — the 12-slot current accumulator the push scatters
//!   into (the atomic-contention site).
//! * [`sim::Simulation::sort_particles`] — the sorting hook (§3.2).
//! * [`deck`] — benchmark decks, including the laser–plasma-interaction
//!   style deck used throughout §5.

pub mod accumulate;
pub mod checkpoint;
pub mod compact;
pub mod constants;
pub mod deck;
pub mod diagnostics;
pub mod energy;
pub mod field;
pub mod grid;
pub mod interp;
pub mod push;
pub mod sim;
pub mod species;
pub mod tile;
pub mod tune;

pub use checkpoint::StepError;
pub use deck::Deck;
pub use field::FieldArray;
pub use grid::{Grid, StencilSide};
pub use interp::{load_interpolators, load_interpolators_into, Interpolator, InterpolatorArray};
pub use sim::Simulation;
pub use species::{ParticleRecord, Species};
pub use tile::{TileEngine, TilePolicy, TileStats};
pub use tune::TuneDriver;
