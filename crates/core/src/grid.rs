//! The 3-D periodic Yee grid.
//!
//! Cells are indexed by a linear *voxel* id (VPIC's `VOXEL(x,y,z)`),
//! x-fastest. There are no ghost layers: the grid is single-domain
//! periodic and neighbor lookups wrap modularly (the `cluster` crate
//! models multi-domain decomposition and its halo traffic separately).

use serde::Serialize;
use std::ops::Range;

/// Which side a stencil's neighbor offsets point to, for
/// [`Grid::interior_xs`]: a *plus*-side stencil reads `+1, +nx, +nx·ny`
/// (curl-E, interpolator load), a *minus*-side stencil reads
/// `−1, −nx, −nx·ny` (curl-B, accumulator gather).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StencilSide {
    /// Neighbors at `+1, +nx, +nx·ny`.
    Plus,
    /// Neighbors at `−1, −nx, −nx·ny`.
    Minus,
}

/// Grid geometry and time step.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Grid {
    /// Cells along x.
    pub nx: usize,
    /// Cells along y.
    pub ny: usize,
    /// Cells along z.
    pub nz: usize,
    /// Cell size along x (normalized units).
    pub dx: f32,
    /// Cell size along y.
    pub dy: f32,
    /// Cell size along z.
    pub dz: f32,
    /// Time step (must satisfy the Courant limit).
    pub dt: f32,
}

impl Grid {
    /// A periodic grid of `nx × ny × nz` unit cells with a CFL-safe `dt`.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx >= 1 && ny >= 1 && nz >= 1, "grid needs at least one cell");
        let dt = crate::constants::courant_dt(1.0, 1.0, 1.0);
        Self { nx, ny, nz, dx: 1.0, dy: 1.0, dz: 1.0, dt }
    }

    /// Override the time step (still must be CFL-stable; checked).
    pub fn with_dt(mut self, dt: f32) -> Self {
        let limit = crate::constants::courant_dt(self.dx, self.dy, self.dz)
            / crate::constants::CFL_SAFETY;
        assert!(dt > 0.0 && dt < limit, "dt {dt} violates the Courant limit {limit}");
        self.dt = dt;
        self
    }

    /// Total cell count.
    pub fn cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Linear voxel id of `(ix, iy, iz)` (x-fastest, VPIC convention).
    #[inline(always)]
    pub fn voxel(&self, ix: usize, iy: usize, iz: usize) -> usize {
        debug_assert!(ix < self.nx && iy < self.ny && iz < self.nz);
        ix + self.nx * (iy + self.ny * iz)
    }

    /// Inverse of [`Grid::voxel`].
    #[inline(always)]
    pub fn coords(&self, v: usize) -> (usize, usize, usize) {
        debug_assert!(v < self.cells());
        let ix = v % self.nx;
        let iy = (v / self.nx) % self.ny;
        let iz = v / (self.nx * self.ny);
        (ix, iy, iz)
    }

    /// Periodic neighbor `delta = (dx, dy, dz)` of voxel `v`.
    #[inline(always)]
    pub fn neighbor(&self, v: usize, delta: (isize, isize, isize)) -> usize {
        let (ix, iy, iz) = self.coords(v);
        let wrap = |i: usize, d: isize, n: usize| -> usize {
            (((i as isize + d) % n as isize + n as isize) % n as isize) as usize
        };
        self.voxel(
            wrap(ix, delta.0, self.nx),
            wrap(iy, delta.1, self.ny),
            wrap(iz, delta.2, self.nz),
        )
    }

    /// Number of x-rows: one per `(iy, iz)` pair. Row `r` covers the
    /// contiguous voxel span [`Grid::row_range`] — the natural work unit
    /// for the field pipeline's parallel sweeps (unit stride, one cache
    /// line stream per array).
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.ny * self.nz
    }

    /// Contiguous voxel ids of row `r` (x-fastest ⇒ `r·nx .. (r+1)·nx`).
    #[inline(always)]
    pub fn row_range(&self, r: usize) -> Range<usize> {
        debug_assert!(r < self.rows());
        r * self.nx..(r + 1) * self.nx
    }

    /// `(iy, iz)` of row `r` (inverse of `r = iy + ny·iz`).
    #[inline(always)]
    pub fn row_coords(&self, r: usize) -> (usize, usize) {
        debug_assert!(r < self.rows());
        (r % self.ny, r / self.ny)
    }

    /// The x-range of row `r` whose cells are *interior* for a stencil on
    /// `side`: every neighbor offset is affine (`±1, ±nx, ±nx·ny` with no
    /// periodic wrap), so a sweep over this span needs no `neighbor` calls
    /// and vectorizes. Rows on the wrapping face — and every row of a
    /// degenerate dimension (`n == 1` wraps to itself) — return an empty
    /// range; those cells take the general wrapped path.
    #[inline(always)]
    pub fn interior_xs(&self, r: usize, side: StencilSide) -> Range<usize> {
        let (iy, iz) = self.row_coords(r);
        match side {
            StencilSide::Plus => {
                if iy + 1 < self.ny && iz + 1 < self.nz && self.nx > 1 {
                    0..self.nx - 1
                } else {
                    0..0
                }
            }
            StencilSide::Minus => {
                if iy >= 1 && iz >= 1 {
                    1..self.nx
                } else {
                    0..0
                }
            }
        }
    }

    /// Physical domain volume.
    pub fn volume(&self) -> f32 {
        self.cells() as f32 * self.dx * self.dy * self.dz
    }

    /// The six face-neighbor deltas (VPIC's point-to-point partners).
    pub const FACE_NEIGHBORS: [(isize, isize, isize); 6] = [
        (-1, 0, 0),
        (1, 0, 0),
        (0, -1, 0),
        (0, 1, 0),
        (0, 0, -1),
        (0, 0, 1),
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voxel_roundtrip_covers_grid() {
        let g = Grid::new(4, 3, 5);
        assert_eq!(g.cells(), 60);
        let mut seen = [false; 60];
        for iz in 0..5 {
            for iy in 0..3 {
                for ix in 0..4 {
                    let v = g.voxel(ix, iy, iz);
                    assert!(!seen[v]);
                    seen[v] = true;
                    assert_eq!(g.coords(v), (ix, iy, iz));
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn x_is_fastest_index() {
        let g = Grid::new(8, 8, 8);
        assert_eq!(g.voxel(1, 0, 0), g.voxel(0, 0, 0) + 1);
        assert_eq!(g.voxel(0, 1, 0), 8);
        assert_eq!(g.voxel(0, 0, 1), 64);
    }

    #[test]
    fn neighbors_wrap_periodically() {
        let g = Grid::new(4, 3, 2);
        let v = g.voxel(0, 0, 0);
        assert_eq!(g.neighbor(v, (-1, 0, 0)), g.voxel(3, 0, 0));
        assert_eq!(g.neighbor(v, (0, -1, 0)), g.voxel(0, 2, 0));
        assert_eq!(g.neighbor(v, (0, 0, -1)), g.voxel(0, 0, 1));
        let w = g.voxel(3, 2, 1);
        assert_eq!(g.neighbor(w, (1, 1, 1)), g.voxel(0, 0, 0));
        // identity
        assert_eq!(g.neighbor(w, (0, 0, 0)), w);
    }

    #[test]
    fn default_dt_is_cfl_stable() {
        let g = Grid::new(10, 10, 10);
        assert!(g.dt < 1.0 / 3f32.sqrt());
    }

    #[test]
    #[should_panic(expected = "Courant")]
    fn with_dt_rejects_unstable_step() {
        let _ = Grid::new(4, 4, 4).with_dt(1.0);
    }

    #[test]
    fn rows_tile_the_grid_contiguously() {
        let g = Grid::new(4, 3, 5);
        assert_eq!(g.rows(), 15);
        let mut next = 0;
        for r in 0..g.rows() {
            let span = g.row_range(r);
            assert_eq!(span.start, next);
            assert_eq!(span.len(), g.nx);
            next = span.end;
            let (iy, iz) = g.row_coords(r);
            for (ix, v) in span.enumerate() {
                assert_eq!(g.coords(v), (ix, iy, iz));
            }
        }
        assert_eq!(next, g.cells());
    }

    #[test]
    fn interior_cells_have_affine_neighbors() {
        for (nx, ny, nz) in [(4, 3, 5), (1, 4, 4), (4, 1, 4), (4, 4, 1), (2, 2, 2), (1, 1, 1)] {
            let g = Grid::new(nx, ny, nz);
            let (sx, sy, sz) = (1isize, nx as isize, (nx * ny) as isize);
            for r in 0..g.rows() {
                let row = g.row_range(r);
                for ix in g.interior_xs(r, StencilSide::Plus) {
                    let v = row.start + ix;
                    assert_eq!(g.neighbor(v, (1, 0, 0)) as isize, v as isize + sx);
                    assert_eq!(g.neighbor(v, (0, 1, 0)) as isize, v as isize + sy);
                    assert_eq!(g.neighbor(v, (0, 0, 1)) as isize, v as isize + sz);
                    assert_eq!(g.neighbor(v, (0, 1, 1)) as isize, v as isize + sy + sz);
                    assert_eq!(g.neighbor(v, (1, 1, 0)) as isize, v as isize + sx + sy);
                    assert_eq!(g.neighbor(v, (1, 0, 1)) as isize, v as isize + sx + sz);
                }
                for ix in g.interior_xs(r, StencilSide::Minus) {
                    let v = row.start + ix;
                    assert_eq!(g.neighbor(v, (-1, 0, 0)) as isize, v as isize - sx);
                    assert_eq!(g.neighbor(v, (0, -1, 0)) as isize, v as isize - sy);
                    assert_eq!(g.neighbor(v, (0, 0, -1)) as isize, v as isize - sz);
                }
            }
        }
    }

    #[test]
    fn degenerate_dims_have_empty_interiors() {
        for side in [StencilSide::Plus, StencilSide::Minus] {
            let g = Grid::new(1, 1, 1);
            assert!(g.interior_xs(0, side).is_empty());
            // ny == 1: every row wraps in y on both sides
            let g = Grid::new(8, 1, 4);
            for r in 0..g.rows() {
                assert!(g.interior_xs(r, side).is_empty(), "{side:?} row {r}");
            }
        }
        // interior counts: plus side owns (nx-1)(ny-1)(nz-1) cells,
        // minus side the same count shifted
        let g = Grid::new(4, 3, 5);
        for side in [StencilSide::Plus, StencilSide::Minus] {
            let n: usize = (0..g.rows()).map(|r| g.interior_xs(r, side).len()).sum();
            assert_eq!(n, (g.nx - 1) * (g.ny - 1) * (g.nz - 1), "{side:?}");
        }
    }

    #[test]
    fn six_face_neighbors() {
        assert_eq!(Grid::FACE_NEIGHBORS.len(), 6);
        let g = Grid::new(5, 5, 5);
        let v = g.voxel(2, 2, 2);
        let n: std::collections::HashSet<usize> = Grid::FACE_NEIGHBORS
            .iter()
            .map(|&d| g.neighbor(v, d))
            .collect();
        assert_eq!(n.len(), 6);
        assert!(!n.contains(&v));
    }
}
