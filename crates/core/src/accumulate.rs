//! Current accumulation: VPIC's 12-slot per-cell accumulator and its
//! unload into the Yee current arrays.
//!
//! Each within-cell trajectory segment deposits Villasenor–Buneman
//! charge-conserving current weights: 4 slots per component (the four
//! parallel edges of the cell). This scatter — many particles, atomic
//! adds, cell-indexed — is the contention site the paper's sorting
//! algorithms target; its memory footprint is what
//! `memsim::push::ACCUM_BYTES` models.
//!
//! The accumulator stores `charge × fractional displacement × transverse
//! shape`; [`Accumulator::unload`] converts to current density by the
//! `1/dt` factor (unit cells) and adds each slot to its Yee edge.

use crate::field::FieldArray;
use crate::grid::{Grid, StencilSide};
use pk::atomic::{FixedScatterBuf, ScatterMode};
use pk::{ExecSpace, SendPtr, Serial};
use vsimd::Strategy;

/// Accumulator slots per cell: 4 edges × 3 components.
pub const SLOTS: usize = 12;

/// The per-cell current accumulator (atomic, shared across push workers).
///
/// Slots accumulate in *fixed-point* (`i64`, quantum 2⁻⁴⁰ — see
/// [`FixedScatterBuf`]): integer adds are exactly associative, so slot
/// totals are bit-identical for any worker count, scatter mode, deposit
/// order, or partition of the particles — the property the multi-rank
/// halo merge (DESIGN §12) is built on.
#[derive(Debug)]
pub struct Accumulator {
    buf: FixedScatterBuf,
    cells: usize,
    /// Reused `collect` target: sized on the first unload, alloc-free
    /// afterwards.
    scratch: Vec<f64>,
}

impl Accumulator {
    /// A zeroed accumulator for `cells` cells and up to `workers`
    /// concurrent writers in the given scatter mode.
    pub fn new(cells: usize, workers: usize, mode: ScatterMode) -> Self {
        Self { buf: FixedScatterBuf::new(cells * SLOTS, workers, mode), cells, scratch: Vec::new() }
    }

    /// Number of cells covered.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Zero all slots.
    pub fn reset(&self) {
        self.buf.reset();
    }

    /// Deposit one within-cell segment.
    ///
    /// Endpoints are cell-relative offsets in `[-1, 1]`; `qw` is the
    /// particle's `charge × weight`; `worker` identifies the calling
    /// worker for the duplicated scatter mode.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn deposit_segment(
        &self,
        worker: usize,
        cell: usize,
        x0: f32,
        y0: f32,
        z0: f32,
        x1: f32,
        y1: f32,
        z1: f32,
        qw: f32,
    ) {
        debug_assert!(cell < self.cells);
        let base = cell * SLOTS;
        let w = segment_weights(x0, y0, z0, x1, y1, z1, qw);
        for (s, &val) in w.iter().enumerate() {
            if val != 0.0 {
                self.buf.add(worker, base + s, val as f64);
            }
        }
    }

    /// Raw slot value (tests/diagnostics).
    pub fn slot(&self, cell: usize, slot: usize) -> f64 {
        self.buf.get(cell * SLOTS + slot)
    }

    /// One cell's twelve slot totals as raw fixed-point integers — the
    /// unit the cluster halo exchange ships between ranks.
    pub fn cell_raw(&self, cell: usize) -> [i64; SLOTS] {
        let base = cell * SLOTS;
        std::array::from_fn(|s| self.buf.get_raw(base + s))
    }

    /// Wrapping-add raw fixed-point slot values into a cell (halo
    /// *reduce*: a neighbor's halo-shell deposits merged into the owner).
    pub fn merge_cell_raw(&self, cell: usize, raw: &[i64; SLOTS]) {
        let base = cell * SLOTS;
        for (s, &r) in raw.iter().enumerate() {
            if r != 0 {
                self.buf.add_raw(0, base + s, r);
            }
        }
    }

    /// Overwrite a cell's slot totals with the owner's merged values
    /// (halo *fill*: boundary-cell totals broadcast back into neighbors'
    /// halo shells so their minus-side unload gathers see merged data).
    pub fn set_cell_raw(&self, cell: usize, raw: &[i64; SLOTS]) {
        let base = cell * SLOTS;
        for (s, &r) in raw.iter().enumerate() {
            self.buf.set_raw(base + s, r);
        }
    }

    /// Scratch capacity (no-alloc-after-warmup assertions).
    pub fn scratch_capacity(&self) -> usize {
        self.scratch.capacity()
    }

    /// The historical scatter-order unload, kept as the value oracle: for
    /// every cell it pushes each slot outward to its edge. Its f32 adds
    /// happen in cell order, so its rounding differs (by ulps) from the
    /// gather-order [`Accumulator::unload_on`] — compare with a tolerance,
    /// not bitwise. Allocates a fresh collect vector per call (the cost
    /// the `repro -- field` bench baselines against).
    pub fn unload_scatter_ref(&self, f: &mut FieldArray) {
        let FieldArray { grid: g, jx, jy, jz, .. } = f;
        assert_eq!(g.cells(), self.cells, "accumulator/grid mismatch");
        let rdt = 1.0 / g.dt;
        let vals = self.buf.collect();
        for v in 0..self.cells {
            let base = v * SLOTS;
            for (s, (a, b)) in CORNERS.iter().enumerate() {
                let jx_edge = g.neighbor(v, (0, *a, *b));
                let jy_edge = g.neighbor(v, (*b, 0, *a));
                let jz_edge = g.neighbor(v, (*a, *b, 0));
                jx[jx_edge] += (vals[base + s] * rdt as f64) as f32;
                jy[jy_edge] += (vals[base + 4 + s] * rdt as f64) as f32;
                jz[jz_edge] += (vals[base + 8 + s] * rdt as f64) as f32;
            }
        }
    }

    /// Convert accumulated charge-displacements to current density and
    /// add into the field's J arrays (VPIC's `unload_accumulator_array`).
    ///
    /// Cell `v`'s slot `(a, b)` of the x-component belongs to the Yee
    /// x-edge of voxel `v + a·ŷ + b·ẑ` (periodic), and similarly for the
    /// cyclic y and z components.
    pub fn unload(&mut self, f: &mut FieldArray) {
        self.unload_on(&Serial, Strategy::Auto, f);
    }

    /// [`Accumulator::unload`] with the row sweep distributed over `space`.
    ///
    /// Determinism needs edge *ownership*: the scatter order (each cell
    /// pushing to neighboring edges) would race and round in worker-
    /// dependent order, so this kernel inverts it into a gather — edge `e`
    /// pulls its four x-contributions from cells `e − a·ŷ − b·ẑ` (slot
    /// `s`), cyclically for y and z, sums them in fixed slot order in
    /// `f64`, and applies one rounding. Every edge has exactly one writer,
    /// so the result is bit-identical for any space, strategy, or worker
    /// count. The `collect` scratch is reused across calls.
    ///
    /// Strategy mapping: the gather is `f64` (no `f64` lane type in
    /// `vsimd`), so *manual* falls back to the fused *auto* loop and
    /// *ad hoc* to the split *guided* passes; the split/fused choice is
    /// the only strategy-visible axis here.
    pub fn unload_on<S: ExecSpace>(&mut self, space: &S, strategy: Strategy, f: &mut FieldArray) {
        let FieldArray { grid: g, jx, jy, jz, .. } = f;
        assert_eq!(g.cells(), self.cells, "accumulator/grid mismatch");
        // widen the same f32 constant the scatter reference uses
        let rdt = (1.0f32 / g.dt) as f64;
        self.buf.collect_into(&mut self.scratch);
        let vals = self.scratch.as_slice();
        let nx = g.nx;
        let (sy, sz) = (g.nx, g.nx * g.ny);
        let pjx = SendPtr::new(jx.as_mut_ptr());
        let pjy = SendPtr::new(jy.as_mut_ptr());
        let pjz = SendPtr::new(jz.as_mut_ptr());
        let g = &*g;
        let split = matches!(strategy, Strategy::Guided | Strategy::AdHoc);
        space.parallel_for(g.rows(), move |r| {
            let row = g.row_range(r);
            let v0 = row.start;
            // SAFETY: rows are disjoint; this invocation exclusively owns
            // row `r`'s span of each J array.
            let (jxr, jyr, jzr) = unsafe {
                (
                    std::slice::from_raw_parts_mut(pjx.get().add(v0), nx),
                    std::slice::from_raw_parts_mut(pjy.get().add(v0), nx),
                    std::slice::from_raw_parts_mut(pjz.get().add(v0), nx),
                )
            };
            let inner = g.interior_xs(r, StencilSide::Minus);
            let gather_x = |v: usize| {
                ((vals[v * SLOTS]
                    + vals[(v - sy) * SLOTS + 1]
                    + vals[(v - sz) * SLOTS + 2]
                    + vals[(v - sy - sz) * SLOTS + 3])
                    * rdt) as f32
            };
            let gather_y = |v: usize| {
                ((vals[v * SLOTS + 4]
                    + vals[(v - sz) * SLOTS + 5]
                    + vals[(v - 1) * SLOTS + 6]
                    + vals[(v - 1 - sz) * SLOTS + 7])
                    * rdt) as f32
            };
            let gather_z = |v: usize| {
                ((vals[v * SLOTS + 8]
                    + vals[(v - 1) * SLOTS + 9]
                    + vals[(v - sy) * SLOTS + 10]
                    + vals[(v - 1 - sy) * SLOTS + 11])
                    * rdt) as f32
            };
            if split {
                // kernel splitting: one component per pass
                for ix in inner.clone() {
                    jxr[ix] += gather_x(v0 + ix);
                }
                for ix in inner.clone() {
                    jyr[ix] += gather_y(v0 + ix);
                }
                for ix in inner.clone() {
                    jzr[ix] += gather_z(v0 + ix);
                }
            } else {
                for ix in inner.clone() {
                    let v = v0 + ix;
                    jxr[ix] += gather_x(v);
                    jyr[ix] += gather_y(v);
                    jzr[ix] += gather_z(v);
                }
            }
            // boundary shell: general periodic sources, same sum tree
            for ix in (0..inner.start).chain(inner.end..nx) {
                let v = v0 + ix;
                let (mut gx, mut gy, mut gz) = (0.0f64, 0.0f64, 0.0f64);
                for (s, (a, b)) in CORNERS.iter().enumerate() {
                    gx += vals[g.neighbor(v, (0, -*a, -*b)) * SLOTS + s];
                    gy += vals[g.neighbor(v, (-*b, 0, -*a)) * SLOTS + 4 + s];
                    gz += vals[g.neighbor(v, (-*a, -*b, 0)) * SLOTS + 8 + s];
                }
                jxr[ix] += (gx * rdt) as f32;
                jyr[ix] += (gy * rdt) as f32;
                jzr[ix] += (gz * rdt) as f32;
            }
        });
    }
}

/// Transverse corner order shared by deposit and unload:
/// `(0,0), (1,0), (0,1), (1,1)` in the component's cyclic transverse dims.
const CORNERS: [(isize, isize); 4] = [(0, 0), (1, 0), (0, 1), (1, 1)];

/// Villasenor–Buneman weights for one within-cell segment: 12 values,
/// `[jx×4, jy×4, jz×4]`, in units of charge × fractional displacement.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn segment_weights(
    x0: f32,
    y0: f32,
    z0: f32,
    x1: f32,
    y1: f32,
    z1: f32,
    qw: f32,
) -> [f32; SLOTS] {
    // convert offsets [-1,1] to cell coordinates [0,1]
    let (xi0, xi1) = ((x0 + 1.0) * 0.5, (x1 + 1.0) * 0.5);
    let (et0, et1) = ((y0 + 1.0) * 0.5, (y1 + 1.0) * 0.5);
    let (ze0, ze1) = ((z0 + 1.0) * 0.5, (z1 + 1.0) * 0.5);
    let (dxi, det, dze) = (xi1 - xi0, et1 - et0, ze1 - ze0);
    let (mxi, met, mze) = (
        0.5 * (xi0 + xi1),
        0.5 * (et0 + et1),
        0.5 * (ze0 + ze1),
    );
    let mut w = [0.0f32; SLOTS];
    // x component: transverse (η, ζ)
    let corr = dxi * det * dze / 12.0;
    w[0] = qw * (dxi * (1.0 - met) * (1.0 - mze) + corr);
    w[1] = qw * (dxi * met * (1.0 - mze) - corr);
    w[2] = qw * (dxi * (1.0 - met) * mze - corr);
    w[3] = qw * (dxi * met * mze + corr);
    // y component: transverse (ζ, ξ) — cyclic
    let corr = det * dze * dxi / 12.0;
    w[4] = qw * (det * (1.0 - mze) * (1.0 - mxi) + corr);
    w[5] = qw * (det * mze * (1.0 - mxi) - corr);
    w[6] = qw * (det * (1.0 - mze) * mxi - corr);
    w[7] = qw * (det * mze * mxi + corr);
    // z component: transverse (ξ, η)
    let corr = dze * dxi * det / 12.0;
    w[8] = qw * (dze * (1.0 - mxi) * (1.0 - met) + corr);
    w[9] = qw * (dze * mxi * (1.0 - met) - corr);
    w[10] = qw * (dze * (1.0 - mxi) * met - corr);
    w[11] = qw * (dze * mxi * met + corr);
    w
}

/// CIC (trilinear) node deposition of a charge at cell-relative offsets —
/// the charge density that pairs with the VB current for continuity
/// checks. Adds `qw × weight` to the 8 surrounding node slots of `rho`
/// (nodes indexed by their voxel).
pub fn deposit_rho_node(grid: &Grid, rho: &mut [f64], cell: usize, x: f32, y: f32, z: f32, qw: f32) {
    let (xi, et, ze) = ((x + 1.0) * 0.5, (y + 1.0) * 0.5, (z + 1.0) * 0.5);
    for (a, b, c) in [
        (0, 0, 0),
        (1, 0, 0),
        (0, 1, 0),
        (1, 1, 0),
        (0, 0, 1),
        (1, 0, 1),
        (0, 1, 1),
        (1, 1, 1),
    ] {
        let wx = if a == 1 { xi } else { 1.0 - xi };
        let wy = if b == 1 { et } else { 1.0 - et };
        let wz = if c == 1 { ze } else { 1.0 - ze };
        let node = grid.neighbor(cell, (a, b, c));
        rho[node] += (qw * wx * wy * wz) as f64;
    }
}

/// Discrete node divergence of J (edges → node), for continuity checks:
/// `divJ(node v) = Σ (j(v) − j(v − ê)) / d`.
pub fn div_j_node(f: &FieldArray, v: usize) -> f64 {
    let g = &f.grid;
    let xm = g.neighbor(v, (-1, 0, 0));
    let ym = g.neighbor(v, (0, -1, 0));
    let zm = g.neighbor(v, (0, 0, -1));
    ((f.jx[v] - f.jx[xm]) / g.dx + (f.jy[v] - f.jy[ym]) / g.dy + (f.jz[v] - f.jz[zm]) / g.dz)
        as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_particle_deposits_nothing() {
        let w = segment_weights(0.3, -0.2, 0.7, 0.3, -0.2, 0.7, 5.0);
        assert!(w.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn pure_x_motion_deposits_only_jx_with_cic_shape() {
        // move along x at transverse center: all four jx edges equal
        let w = segment_weights(-0.5, 0.0, 0.0, 0.5, 0.0, 0.0, 1.0);
        let dxi = 0.5; // half a cell
        #[allow(clippy::needless_range_loop)]
        for s in 0..4 {
            assert!((w[s] - dxi * 0.25).abs() < 1e-6, "slot {s}: {}", w[s]);
        }
        assert!(w[4..].iter().all(|&x| x == 0.0));
        // total jx equals charge × displacement
        let total: f32 = w[..4].iter().sum();
        assert!((total - dxi).abs() < 1e-6);
    }

    #[test]
    fn off_center_motion_weights_nearest_edges_more() {
        // particle near (y−, z−) corner moving in x
        let w = segment_weights(-0.5, -0.8, -0.8, 0.5, -0.8, -0.8, 1.0);
        assert!(w[0] > w[1] && w[0] > w[2] && w[0] > w[3]);
        let total: f32 = w[..4].iter().sum();
        assert!((total - 0.5).abs() < 1e-6, "shape weights sum to 1");
    }

    #[test]
    fn weights_are_charge_linear() {
        let a = segment_weights(-0.2, 0.1, -0.4, 0.3, 0.2, 0.1, 1.0);
        let b = segment_weights(-0.2, 0.1, -0.4, 0.3, 0.2, 0.1, -2.5);
        for (x, y) in a.iter().zip(&b) {
            assert!((y - (-2.5) * x).abs() < 1e-6);
        }
    }

    #[test]
    fn continuity_holds_for_within_cell_moves() {
        // Δρ + dt·divJ = 0 at every node, exactly (the VB property)
        let g = Grid::new(4, 4, 4);
        let cell = g.voxel(1, 2, 1);
        let qw = 1.7f32;
        let (x0, y0, z0) = (-0.4f32, 0.3, -0.1);
        let (x1, y1, z1) = (0.6f32, -0.5, 0.5);
        let mut rho0 = vec![0.0f64; g.cells()];
        let mut rho1 = vec![0.0f64; g.cells()];
        deposit_rho_node(&g, &mut rho0, cell, x0, y0, z0, qw);
        deposit_rho_node(&g, &mut rho1, cell, x1, y1, z1, qw);
        let mut acc = Accumulator::new(g.cells(), 1, ScatterMode::Atomic);
        acc.deposit_segment(0, cell, x0, y0, z0, x1, y1, z1, qw);
        let mut f = FieldArray::new(g.clone());
        acc.unload(&mut f);
        for v in 0..g.cells() {
            let drho_dt = (rho1[v] - rho0[v]) / g.dt as f64;
            let div = div_j_node(&f, v);
            assert!(
                (drho_dt + div).abs() < 1e-5,
                "continuity violated at node {v}: dρ/dt={drho_dt}, divJ={div}"
            );
        }
    }

    #[test]
    fn unload_routes_slots_to_correct_edges() {
        let g = Grid::new(3, 3, 3);
        let cell = g.voxel(1, 1, 1);
        let mut acc = Accumulator::new(g.cells(), 1, ScatterMode::Atomic);
        // x-motion at the (y+, z+) corner → only slot 3 → edge (i+½, j+1, k+1)
        acc.deposit_segment(0, cell, -0.5, 1.0, 1.0, 0.5, 1.0, 1.0, 1.0);
        let mut f = FieldArray::new(g.clone());
        acc.unload(&mut f);
        let expected_edge = g.neighbor(cell, (0, 1, 1));
        assert!(f.jx[expected_edge] > 0.0);
        let nonzero = f.jx.iter().filter(|&&x| x != 0.0).count();
        assert_eq!(nonzero, 1, "only the corner edge receives current");
    }

    #[test]
    fn opposite_motions_cancel() {
        let g = Grid::new(3, 3, 3);
        let mut acc = Accumulator::new(g.cells(), 1, ScatterMode::Atomic);
        let cell = 5;
        acc.deposit_segment(0, cell, -0.5, 0.2, 0.2, 0.5, 0.2, 0.2, 1.0);
        acc.deposit_segment(0, cell, 0.5, 0.2, 0.2, -0.5, 0.2, 0.2, 1.0);
        let mut f = FieldArray::new(g);
        acc.unload(&mut f);
        assert!(f.jx.iter().all(|&x| x.abs() < 1e-7));
    }

    /// A deck-independent deposit pattern touching every cell.
    fn seeded_accumulator(g: &Grid, workers: usize, mode: ScatterMode) -> Accumulator {
        let acc = Accumulator::new(g.cells(), workers, mode);
        for cell in 0..g.cells() {
            let t = cell as f32 * 0.37;
            acc.deposit_segment(
                cell % workers.max(1),
                cell,
                -0.4 + 0.1 * t.sin(),
                0.3 * t.cos(),
                -0.2,
                0.5,
                -0.3 * t.sin(),
                0.4 * t.cos(),
                1.0 + 0.5 * t.sin(),
            );
        }
        acc
    }

    #[test]
    fn gather_unload_matches_scatter_reference_within_rounding() {
        for (nx, ny, nz) in [(5, 4, 3), (2, 2, 2), (1, 4, 4), (6, 1, 2), (1, 1, 1)] {
            let g = Grid::new(nx, ny, nz);
            let mut acc = seeded_accumulator(&g, 1, ScatterMode::Atomic);
            let mut scatter = FieldArray::new(g.clone());
            acc.unload_scatter_ref(&mut scatter);
            let mut gather = FieldArray::new(g.clone());
            acc.unload(&mut gather);
            for v in 0..g.cells() {
                for (name, a, b) in [
                    ("jx", scatter.jx[v], gather.jx[v]),
                    ("jy", scatter.jy[v], gather.jy[v]),
                    ("jz", scatter.jz[v], gather.jz[v]),
                ] {
                    assert!(
                        (a - b).abs() <= 1e-5 * a.abs().max(1.0),
                        "{name}[{v}] scatter {a} vs gather {b} ({nx},{ny},{nz})"
                    );
                }
            }
        }
    }

    #[test]
    fn gather_unload_bit_identical_across_spaces_and_strategies() {
        let g = Grid::new(5, 4, 3);
        let mut acc = seeded_accumulator(&g, 3, ScatterMode::Duplicated);
        let mut reference = FieldArray::new(g.clone());
        acc.unload(&mut reference);
        for strategy in Strategy::ALL {
            for workers in [1, 2, 4, 7] {
                let threads = pk::Threads::new(workers);
                let mut f = FieldArray::new(g.clone());
                acc.unload_on(&threads, strategy, &mut f);
                assert_eq!(reference.jx, f.jx, "{strategy:?} {workers} workers");
                assert_eq!(reference.jy, f.jy, "{strategy:?} {workers} workers");
                assert_eq!(reference.jz, f.jz, "{strategy:?} {workers} workers");
            }
        }
    }

    #[test]
    fn unload_scratch_is_reused() {
        let g = Grid::new(4, 4, 4);
        let mut acc = seeded_accumulator(&g, 1, ScatterMode::Atomic);
        let mut f = FieldArray::new(g.clone());
        assert_eq!(acc.scratch_capacity(), 0);
        acc.unload(&mut f);
        let cap = acc.scratch_capacity();
        assert!(cap >= g.cells() * SLOTS);
        for _ in 0..3 {
            acc.unload(&mut f);
            assert_eq!(acc.scratch_capacity(), cap, "unload reallocated scratch");
        }
    }

    #[test]
    fn reset_clears_everything() {
        let g = Grid::new(2, 2, 2);
        let acc = Accumulator::new(g.cells(), 2, ScatterMode::Duplicated);
        acc.deposit_segment(1, 0, -0.5, 0.0, 0.0, 0.5, 0.0, 0.0, 1.0);
        assert!(acc.slot(0, 0) != 0.0);
        acc.reset();
        for s in 0..SLOTS {
            assert_eq!(acc.slot(0, s), 0.0);
        }
    }
}
