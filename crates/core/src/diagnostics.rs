//! In-timestep particle diagnostics.
//!
//! The paper's §6 names "advanced diagnostics that can be run in the
//! timestep" as a capability the performance work unlocks. These are the
//! standard kinetic diagnostics: velocity-space histograms, per-species
//! temperature (thermal spread), bulk drift, and per-cell density — each
//! a single pass over the SoA particle arrays.

use crate::grid::Grid;
use crate::species::Species;
use serde::Serialize;

/// Per-species kinetic moments.
#[derive(Debug, Clone, Serialize)]
pub struct Moments {
    /// Species name.
    pub name: String,
    /// Total weighted particle count.
    pub density: f64,
    /// Mean momentum per component (bulk drift, γβ units).
    pub drift: (f64, f64, f64),
    /// Momentum variance per component (thermal spread squared).
    pub thermal_sq: (f64, f64, f64),
    /// Scalar "temperature": mean of the three variances × mass.
    pub temperature: f64,
}

/// Compute kinetic moments of a species.
pub fn moments(s: &Species) -> Moments {
    let n = s.len();
    if n == 0 {
        return Moments {
            name: s.name.clone(),
            density: 0.0,
            drift: (0.0, 0.0, 0.0),
            thermal_sq: (0.0, 0.0, 0.0),
            temperature: 0.0,
        };
    }
    let mut wsum = 0.0f64;
    let mut mean = [0.0f64; 3];
    for p in 0..n {
        let w = s.w[p] as f64;
        wsum += w;
        mean[0] += w * s.ux[p] as f64;
        mean[1] += w * s.uy[p] as f64;
        mean[2] += w * s.uz[p] as f64;
    }
    for m in &mut mean {
        *m /= wsum;
    }
    let mut var = [0.0f64; 3];
    for p in 0..n {
        let w = s.w[p] as f64;
        var[0] += w * (s.ux[p] as f64 - mean[0]).powi(2);
        var[1] += w * (s.uy[p] as f64 - mean[1]).powi(2);
        var[2] += w * (s.uz[p] as f64 - mean[2]).powi(2);
    }
    for v in &mut var {
        *v /= wsum;
    }
    Moments {
        name: s.name.clone(),
        density: wsum,
        drift: (mean[0], mean[1], mean[2]),
        thermal_sq: (var[0], var[1], var[2]),
        temperature: s.m as f64 * (var[0] + var[1] + var[2]) / 3.0,
    }
}

/// A velocity-space histogram over one momentum component.
#[derive(Debug, Clone, Serialize)]
pub struct VelocityHistogram {
    /// Lower edge of the first bin.
    pub min: f64,
    /// Upper edge of the last bin.
    pub max: f64,
    /// Weighted counts per bin.
    pub bins: Vec<f64>,
}

impl VelocityHistogram {
    /// Bin width.
    pub fn width(&self) -> f64 {
        (self.max - self.min) / self.bins.len() as f64
    }

    /// Total weight histogrammed.
    pub fn total(&self) -> f64 {
        self.bins.iter().sum()
    }

    /// Index of the fullest bin.
    pub fn mode_bin(&self) -> usize {
        self.bins
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Histogram one momentum component (`0` = ux, `1` = uy, `2` = uz) into
/// `bins` equal bins over `[min, max]`; out-of-range particles clamp to
/// the edge bins.
pub fn velocity_histogram(s: &Species, component: usize, bins: usize, min: f64, max: f64) -> VelocityHistogram {
    assert!(component < 3, "component must be 0, 1, or 2");
    assert!(bins >= 1 && max > min);
    let data = match component {
        0 => &s.ux,
        1 => &s.uy,
        _ => &s.uz,
    };
    let mut out = vec![0.0f64; bins];
    let scale = bins as f64 / (max - min);
    for (p, &u) in data.iter().enumerate() {
        let b = (((u as f64 - min) * scale) as isize).clamp(0, bins as isize - 1) as usize;
        out[b] += s.w[p] as f64;
    }
    VelocityHistogram { min, max, bins: out }
}

/// Per-cell weighted particle counts (the density field diagnostics and
/// load-balance tooling read).
pub fn cell_density(grid: &Grid, s: &Species) -> Vec<f64> {
    let mut rho = vec![0.0f64; grid.cells()];
    for p in 0..s.len() {
        rho[s.cell[p] as usize] += s.w[p] as f64;
    }
    rho
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thermal_species(vth: f32, drift: (f32, f32, f32)) -> Species {
        let g = Grid::new(4, 4, 4);
        let mut s = Species::new("e", -1.0, 1.0);
        s.load_uniform(&g, 30_000, vth, drift, 0.5, 42);
        s
    }

    #[test]
    fn moments_recover_load_parameters() {
        let s = thermal_species(0.08, (0.3, 0.0, -0.1));
        let m = moments(&s);
        assert!((m.density - 15_000.0).abs() < 1.0, "Σw = 30k × 0.5");
        assert!((m.drift.0 - 0.3).abs() < 0.005);
        assert!((m.drift.2 + 0.1).abs() < 0.005);
        assert!((m.thermal_sq.1.sqrt() - 0.08).abs() < 0.005);
        assert!((m.temperature - 0.08f64.powi(2)).abs() < 5e-4);
    }

    #[test]
    fn empty_species_moments_are_zero() {
        let s = Species::new("e", -1.0, 1.0);
        let m = moments(&s);
        assert_eq!(m.density, 0.0);
        assert_eq!(m.temperature, 0.0);
    }

    #[test]
    fn histogram_centers_on_drift() {
        let s = thermal_species(0.05, (0.2, 0.0, 0.0));
        let h = velocity_histogram(&s, 0, 64, -0.5, 0.5);
        assert!((h.total() - 15_000.0).abs() < 1.0);
        // mode bin should contain u = 0.2
        let mode_center = h.min + (h.mode_bin() as f64 + 0.5) * h.width();
        assert!((mode_center - 0.2).abs() < 0.05, "{mode_center}");
    }

    #[test]
    fn histogram_clamps_outliers() {
        let mut s = Species::new("e", -1.0, 1.0);
        s.push_particle(0.0, 0.0, 0.0, 0, 99.0, 0.0, 0.0, 1.0);
        s.push_particle(0.0, 0.0, 0.0, 0, -99.0, 0.0, 0.0, 1.0);
        let h = velocity_histogram(&s, 0, 10, -1.0, 1.0);
        assert_eq!(h.bins[9], 1.0);
        assert_eq!(h.bins[0], 1.0);
    }

    #[test]
    fn cell_density_sums_to_total_weight() {
        let g = Grid::new(4, 4, 4);
        let mut s = Species::new("e", -1.0, 1.0);
        s.load_uniform(&g, 5000, 0.1, (0.0, 0.0, 0.0), 2.0, 3);
        let rho = cell_density(&g, &s);
        let total: f64 = rho.iter().sum();
        assert!((total - 10_000.0).abs() < 1e-6);
        // uniform load: every cell populated
        assert!(rho.iter().all(|&r| r > 0.0));
    }

    #[test]
    #[should_panic(expected = "component")]
    fn bad_component_rejected() {
        let s = Species::new("e", -1.0, 1.0);
        let _ = velocity_histogram(&s, 3, 10, -1.0, 1.0);
    }
}
