//! The per-cell 18-coefficient field interpolator.
//!
//! VPIC precomputes, per cell and per step, an `interpolator_t` of 18
//! floats from the Yee fields; the particle push then *gathers one record
//! per particle* and evaluates E and B at the particle with a handful of
//! FMAs. This record is the gather target whose access pattern the
//! paper's sorting algorithms optimize — its memory footprint (with
//! padding and indexing) is what `memsim::push::INTERP_BYTES` models.
//!
//! Coefficient layout (VPIC order): for each E component, the bilinear
//! coefficients over its two transverse directions in cell-relative
//! coordinates `∈ [-1, 1]`; for each B component, the linear coefficient
//! along its normal direction.

use crate::field::FieldArray;

/// Number of `f32` coefficients per cell.
pub const COEFFS: usize = 18;

/// One cell's interpolation record.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[repr(transparent)]
pub struct Interpolator(pub [f32; COEFFS]);

// named indices into the coefficient array (VPIC field order)
const EX0: usize = 0;
const DEXDY: usize = 1;
const DEXDZ: usize = 2;
const D2EXDYDZ: usize = 3;
const EY0: usize = 4;
const DEYDZ: usize = 5;
const DEYDX: usize = 6;
const D2EYDZDX: usize = 7;
const EZ0: usize = 8;
const DEZDX: usize = 9;
const DEZDY: usize = 10;
const D2EZDXDY: usize = 11;
const CBX0: usize = 12;
const DCBXDX: usize = 13;
const CBY0: usize = 14;
const DCBYDY: usize = 15;
const CBZ0: usize = 16;
const DCBZDZ: usize = 17;

impl Interpolator {
    /// Electric field at cell-relative offsets `(x, y, z) ∈ [-1, 1]³`.
    #[inline(always)]
    pub fn e_at(&self, x: f32, y: f32, z: f32) -> (f32, f32, f32) {
        let c = &self.0;
        let ex = c[EX0] + y * c[DEXDY] + z * c[DEXDZ] + y * z * c[D2EXDYDZ];
        let ey = c[EY0] + z * c[DEYDZ] + x * c[DEYDX] + z * x * c[D2EYDZDX];
        let ez = c[EZ0] + x * c[DEZDX] + y * c[DEZDY] + x * y * c[D2EZDXDY];
        (ex, ey, ez)
    }

    /// Magnetic field at cell-relative offsets.
    #[inline(always)]
    pub fn b_at(&self, x: f32, y: f32, z: f32) -> (f32, f32, f32) {
        let c = &self.0;
        (
            c[CBX0] + x * c[DCBXDX],
            c[CBY0] + y * c[DCBYDY],
            c[CBZ0] + z * c[DCBZDZ],
        )
    }
}

/// Compute the interpolator array from the current fields (VPIC's
/// `load_interpolator_array`). One record per cell.
#[allow(clippy::needless_range_loop)] // voxel-indexed sweep matches the math
pub fn load_interpolators(f: &FieldArray) -> Vec<Interpolator> {
    let g = &f.grid;
    let n = g.cells();
    let mut out = vec![Interpolator::default(); n];
    for v in 0..n {
        let xp = g.neighbor(v, (1, 0, 0));
        let yp = g.neighbor(v, (0, 1, 0));
        let zp = g.neighbor(v, (0, 0, 1));
        let ypzp = g.neighbor(v, (0, 1, 1));
        let zpxp = g.neighbor(v, (1, 0, 1));
        let xpyp = g.neighbor(v, (1, 1, 0));
        let c = &mut out[v].0;
        // ex: bilinear over (y, z); edges at (y∓, z∓)
        let (e00, e10, e01, e11) = (f.ex[v], f.ex[yp], f.ex[zp], f.ex[ypzp]);
        c[EX0] = 0.25 * (e00 + e10 + e01 + e11);
        c[DEXDY] = 0.25 * ((e10 + e11) - (e00 + e01));
        c[DEXDZ] = 0.25 * ((e01 + e11) - (e00 + e10));
        c[D2EXDYDZ] = 0.25 * ((e00 + e11) - (e10 + e01));
        // ey: bilinear over (z, x)
        let (e00, e10, e01, e11) = (f.ey[v], f.ey[zp], f.ey[xp], f.ey[zpxp]);
        c[EY0] = 0.25 * (e00 + e10 + e01 + e11);
        c[DEYDZ] = 0.25 * ((e10 + e11) - (e00 + e01));
        c[DEYDX] = 0.25 * ((e01 + e11) - (e00 + e10));
        c[D2EYDZDX] = 0.25 * ((e00 + e11) - (e10 + e01));
        // ez: bilinear over (x, y)
        let (e00, e10, e01, e11) = (f.ez[v], f.ez[xp], f.ez[yp], f.ez[xpyp]);
        c[EZ0] = 0.25 * (e00 + e10 + e01 + e11);
        c[DEZDX] = 0.25 * ((e10 + e11) - (e00 + e01));
        c[DEZDY] = 0.25 * ((e01 + e11) - (e00 + e10));
        c[D2EZDXDY] = 0.25 * ((e00 + e11) - (e10 + e01));
        // B: linear along each component's normal
        c[CBX0] = 0.5 * (f.bx[v] + f.bx[xp]);
        c[DCBXDX] = 0.5 * (f.bx[xp] - f.bx[v]);
        c[CBY0] = 0.5 * (f.by[v] + f.by[yp]);
        c[DCBYDY] = 0.5 * (f.by[yp] - f.by[v]);
        c[CBZ0] = 0.5 * (f.bz[v] + f.bz[zp]);
        c[DCBZDZ] = 0.5 * (f.bz[zp] - f.bz[v]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;

    #[test]
    fn record_is_18_floats() {
        assert_eq!(COEFFS, 18);
        assert_eq!(std::mem::size_of::<Interpolator>(), 18 * 4);
    }

    #[test]
    fn uniform_field_interpolates_to_itself_everywhere() {
        let g = Grid::new(4, 4, 4);
        let mut f = FieldArray::new(g);
        f.ex.fill(2.0);
        f.ey.fill(-1.0);
        f.ez.fill(0.5);
        f.bx.fill(3.0);
        f.by.fill(-0.25);
        f.bz.fill(1.0);
        let interp = load_interpolators(&f);
        for ip in &interp {
            for &(x, y, z) in &[(0.0f32, 0.0f32, 0.0f32), (1.0, -1.0, 0.5), (-0.3, 0.7, -0.9)] {
                let (ex, ey, ez) = ip.e_at(x, y, z);
                assert!((ex - 2.0).abs() < 1e-6);
                assert!((ey + 1.0).abs() < 1e-6);
                assert!((ez - 0.5).abs() < 1e-6);
                let (bx, by, bz) = ip.b_at(x, y, z);
                assert!((bx - 3.0).abs() < 1e-6);
                assert!((by + 0.25).abs() < 1e-6);
                assert!((bz - 1.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn ex_edge_values_recovered_at_corners() {
        // distinct values on the four x-edges of one cell
        let g = Grid::new(3, 3, 3);
        let mut f = FieldArray::new(g.clone());
        let v = g.voxel(1, 1, 1);
        let yp = g.neighbor(v, (0, 1, 0));
        let zp = g.neighbor(v, (0, 0, 1));
        let ypzp = g.neighbor(v, (0, 1, 1));
        f.ex[v] = 1.0; // (y−, z−)
        f.ex[yp] = 2.0; // (y+, z−)
        f.ex[zp] = 3.0; // (y−, z+)
        f.ex[ypzp] = 4.0; // (y+, z+)
        let ip = load_interpolators(&f)[v];
        assert!((ip.e_at(0.0, -1.0, -1.0).0 - 1.0).abs() < 1e-6);
        assert!((ip.e_at(0.0, 1.0, -1.0).0 - 2.0).abs() < 1e-6);
        assert!((ip.e_at(0.0, -1.0, 1.0).0 - 3.0).abs() < 1e-6);
        assert!((ip.e_at(0.0, 1.0, 1.0).0 - 4.0).abs() < 1e-6);
        // center is the mean
        assert!((ip.e_at(0.0, 0.0, 0.0).0 - 2.5).abs() < 1e-6);
    }

    #[test]
    fn bx_face_values_recovered() {
        let g = Grid::new(3, 2, 2);
        let mut f = FieldArray::new(g.clone());
        let v = g.voxel(0, 0, 0);
        let xp = g.neighbor(v, (1, 0, 0));
        f.bx[v] = 10.0;
        f.bx[xp] = 20.0;
        let ip = load_interpolators(&f)[v];
        assert!((ip.b_at(-1.0, 0.0, 0.0).0 - 10.0).abs() < 1e-6);
        assert!((ip.b_at(1.0, 0.0, 0.0).0 - 20.0).abs() < 1e-6);
        assert!((ip.b_at(0.0, 0.0, 0.0).0 - 15.0).abs() < 1e-6);
    }

    #[test]
    fn interpolation_is_continuous_across_shared_edges() {
        // neighboring cells must agree on E at their shared boundary:
        // evaluate ex at the shared (y=+1 of cell v) == (y=−1 of cell v+y)
        let g = Grid::new(4, 4, 4);
        let mut f = FieldArray::new(g.clone());
        for (i, e) in f.ex.iter_mut().enumerate() {
            *e = (i as f32 * 0.618).sin();
        }
        let interp = load_interpolators(&f);
        let v = g.voxel(1, 1, 1);
        let vy = g.neighbor(v, (0, 1, 0));
        for &z in &[-1.0f32, -0.5, 0.0, 0.5, 1.0] {
            let top = interp[v].e_at(0.0, 1.0, z).0;
            let bottom = interp[vy].e_at(0.0, -1.0, z).0;
            assert!((top - bottom).abs() < 1e-6, "discontinuity at z={z}");
        }
    }
}
