//! The per-cell 18-coefficient field interpolator.
//!
//! VPIC precomputes, per cell and per step, an `interpolator_t` of 18
//! floats from the Yee fields; the particle push then *gathers one record
//! per particle* and evaluates E and B at the particle with a handful of
//! FMAs. This record is the gather target whose access pattern the
//! paper's sorting algorithms optimize — its memory footprint (with
//! padding and indexing) is what `memsim::push::INTERP_BYTES` models.
//!
//! Coefficient layout (VPIC order): for each E component, the bilinear
//! coefficients over its two transverse directions in cell-relative
//! coordinates `∈ [-1, 1]`; for each B component, the linear coefficient
//! along its normal direction.

use crate::field::FieldArray;
use crate::grid::StencilSide;
use pk::{ExecSpace, SendPtr};
use std::ops::Range;
use vsimd::v4::V4F32;
use vsimd::{SimdF32, StencilLane, Strategy};

/// Number of `f32` coefficients per cell.
pub const COEFFS: usize = 18;

/// One cell's interpolation record.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[repr(transparent)]
pub struct Interpolator(pub [f32; COEFFS]);

// named indices into the coefficient array (VPIC field order)
const EX0: usize = 0;
const DEXDY: usize = 1;
const DEXDZ: usize = 2;
const D2EXDYDZ: usize = 3;
const EY0: usize = 4;
const DEYDZ: usize = 5;
const DEYDX: usize = 6;
const D2EYDZDX: usize = 7;
const EZ0: usize = 8;
const DEZDX: usize = 9;
const DEZDY: usize = 10;
const D2EZDXDY: usize = 11;
const CBX0: usize = 12;
const DCBXDX: usize = 13;
const CBY0: usize = 14;
const DCBYDY: usize = 15;
const CBZ0: usize = 16;
const DCBZDZ: usize = 17;

impl Interpolator {
    /// Electric field at cell-relative offsets `(x, y, z) ∈ [-1, 1]³`.
    #[inline(always)]
    pub fn e_at(&self, x: f32, y: f32, z: f32) -> (f32, f32, f32) {
        let c = &self.0;
        let ex = c[EX0] + y * c[DEXDY] + z * c[DEXDZ] + y * z * c[D2EXDYDZ];
        let ey = c[EY0] + z * c[DEYDZ] + x * c[DEYDX] + z * x * c[D2EYDZDX];
        let ez = c[EZ0] + x * c[DEZDX] + y * c[DEZDY] + x * y * c[D2EZDXDY];
        (ex, ey, ez)
    }

    /// Magnetic field at cell-relative offsets.
    #[inline(always)]
    pub fn b_at(&self, x: f32, y: f32, z: f32) -> (f32, f32, f32) {
        let c = &self.0;
        (
            c[CBX0] + x * c[DCBXDX],
            c[CBY0] + y * c[DCBYDY],
            c[CBZ0] + z * c[DCBZDZ],
        )
    }
}

/// A persistent, step-reusable interpolator buffer.
///
/// [`load_interpolators_into`] refills it in place, so a buffer owned by
/// the simulation allocates once (on the first step, or when the grid
/// grows) and is alloc-free on every later step — the per-step
/// `vec![Interpolator::default(); cells]` the serial reference pays is
/// exactly what this type removes.
#[derive(Debug, Clone, Default)]
pub struct InterpolatorArray {
    data: Vec<Interpolator>,
}

impl InterpolatorArray {
    /// An empty buffer; the first [`load_interpolators_into`] sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records currently held (equals the grid's cell count after a load).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True before the first load.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Backing capacity, for no-alloc-after-warmup assertions.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// The records as a slice (what the push kernels gather from).
    pub fn as_slice(&self) -> &[Interpolator] {
        &self.data
    }
}

impl std::ops::Deref for InterpolatorArray {
    type Target = [Interpolator];

    fn deref(&self) -> &[Interpolator] {
        &self.data
    }
}

/// One single-E-component interior pass: the four bilinear coefficients of
/// `a` over its transverse offsets `(s1, s2)`, written to coefficient
/// indices `C0..C0+4`. Lane-width generic with a scalar re-entry tail, so
/// every [`Strategy`] walks the identical op tree (see
/// [`vsimd::stencil`]).
#[inline(always)]
fn e_pass<const C0: usize, L: StencilLane>(
    a: &[f32],
    s1: usize,
    s2: usize,
    out: &mut [Interpolator],
    v0: usize,
    xs: Range<usize>,
) {
    let quarter = L::splat(0.25);
    let mut ix = xs.start;
    while ix + L::LANES <= xs.end {
        let v = v0 + ix;
        let (e00, e10, e01, e11) =
            (L::load(a, v), L::load(a, v + s1), L::load(a, v + s2), L::load(a, v + s1 + s2));
        let c0 = quarter.mul(e00.add(e10).add(e01).add(e11));
        let c1 = quarter.mul(e10.add(e11).sub(e00.add(e01)));
        let c2 = quarter.mul(e01.add(e11).sub(e00.add(e10)));
        let c3 = quarter.mul(e00.add(e11).sub(e10.add(e01)));
        for l in 0..L::LANES {
            let c = &mut out[ix + l].0;
            c[C0] = c0.extract(l);
            c[C0 + 1] = c1.extract(l);
            c[C0 + 2] = c2.extract(l);
            c[C0 + 3] = c3.extract(l);
        }
        ix += L::LANES;
    }
    if ix < xs.end {
        e_pass::<C0, f32>(a, s1, s2, out, v0, ix..xs.end);
    }
}

/// One single-B-component interior pass: midpoint and slope of `a` along
/// its normal stride `s`, written to coefficient indices `C0..C0+2`.
#[inline(always)]
fn b_pass<const C0: usize, L: StencilLane>(
    a: &[f32],
    s: usize,
    out: &mut [Interpolator],
    v0: usize,
    xs: Range<usize>,
) {
    let half = L::splat(0.5);
    let mut ix = xs.start;
    while ix + L::LANES <= xs.end {
        let v = v0 + ix;
        let (b0, b1) = (L::load(a, v), L::load(a, v + s));
        let c0 = half.mul(b0.add(b1));
        let c1 = half.mul(b1.sub(b0));
        for l in 0..L::LANES {
            let c = &mut out[ix + l].0;
            c[C0] = c0.extract(l);
            c[C0 + 1] = c1.extract(l);
        }
        ix += L::LANES;
    }
    if ix < xs.end {
        b_pass::<C0, f32>(a, s, out, v0, ix..xs.end);
    }
}

/// All six split passes for one interior span (guided/manual/ad hoc).
#[inline(always)]
fn split_passes<L: StencilLane>(
    f: &FieldArray,
    sy: usize,
    sz: usize,
    out: &mut [Interpolator],
    v0: usize,
    xs: Range<usize>,
) {
    e_pass::<EX0, L>(&f.ex, sy, sz, out, v0, xs.clone());
    e_pass::<EY0, L>(&f.ey, sz, 1, out, v0, xs.clone());
    e_pass::<EZ0, L>(&f.ez, 1, sy, out, v0, xs.clone());
    b_pass::<CBX0, L>(&f.bx, 1, out, v0, xs.clone());
    b_pass::<CBY0, L>(&f.by, sy, out, v0, xs.clone());
    b_pass::<CBZ0, L>(&f.bz, sz, out, v0, xs);
}

/// The general wrapped per-cell record (boundary shell and the serial
/// reference share this body).
#[inline(always)]
fn load_cell_wrapped(f: &FieldArray, v: usize, c: &mut [f32; COEFFS]) {
    let g = &f.grid;
    let xp = g.neighbor(v, (1, 0, 0));
    let yp = g.neighbor(v, (0, 1, 0));
    let zp = g.neighbor(v, (0, 0, 1));
    let ypzp = g.neighbor(v, (0, 1, 1));
    let zpxp = g.neighbor(v, (1, 0, 1));
    let xpyp = g.neighbor(v, (1, 1, 0));
    // ex: bilinear over (y, z); edges at (y∓, z∓)
    let (e00, e10, e01, e11) = (f.ex[v], f.ex[yp], f.ex[zp], f.ex[ypzp]);
    c[EX0] = 0.25 * (e00 + e10 + e01 + e11);
    c[DEXDY] = 0.25 * ((e10 + e11) - (e00 + e01));
    c[DEXDZ] = 0.25 * ((e01 + e11) - (e00 + e10));
    c[D2EXDYDZ] = 0.25 * ((e00 + e11) - (e10 + e01));
    // ey: bilinear over (z, x)
    let (e00, e10, e01, e11) = (f.ey[v], f.ey[zp], f.ey[xp], f.ey[zpxp]);
    c[EY0] = 0.25 * (e00 + e10 + e01 + e11);
    c[DEYDZ] = 0.25 * ((e10 + e11) - (e00 + e01));
    c[DEYDX] = 0.25 * ((e01 + e11) - (e00 + e10));
    c[D2EYDZDX] = 0.25 * ((e00 + e11) - (e10 + e01));
    // ez: bilinear over (x, y)
    let (e00, e10, e01, e11) = (f.ez[v], f.ez[xp], f.ez[yp], f.ez[xpyp]);
    c[EZ0] = 0.25 * (e00 + e10 + e01 + e11);
    c[DEZDX] = 0.25 * ((e10 + e11) - (e00 + e01));
    c[DEZDY] = 0.25 * ((e01 + e11) - (e00 + e10));
    c[D2EZDXDY] = 0.25 * ((e00 + e11) - (e10 + e01));
    // B: linear along each component's normal
    c[CBX0] = 0.5 * (f.bx[v] + f.bx[xp]);
    c[DCBXDX] = 0.5 * (f.bx[xp] - f.bx[v]);
    c[CBY0] = 0.5 * (f.by[v] + f.by[yp]);
    c[DCBYDY] = 0.5 * (f.by[yp] - f.by[v]);
    c[CBZ0] = 0.5 * (f.bz[v] + f.bz[zp]);
    c[DCBZDZ] = 0.5 * (f.bz[zp] - f.bz[v]);
}

/// Refill `out` from the current fields with the row sweep distributed
/// over `space` and the interior span handled per `strategy` (the
/// interior/boundary split of [`crate::grid::Grid::interior_xs`]).
/// Bit-identical to [`load_interpolators`] for every strategy, space, and
/// worker count; allocates only when `out`'s capacity is below the cell
/// count.
pub fn load_interpolators_into<S: ExecSpace>(
    space: &S,
    strategy: Strategy,
    f: &FieldArray,
    out: &mut InterpolatorArray,
) {
    let g = &f.grid;
    let n = g.cells();
    out.data.clear();
    out.data.resize(n, Interpolator::default());
    let nx = g.nx;
    let (sy, sz) = (g.nx, g.nx * g.ny);
    let pout = SendPtr::new(out.data.as_mut_ptr());
    space.parallel_for(g.rows(), move |r| {
        let row = g.row_range(r);
        let v0 = row.start;
        // SAFETY: rows are disjoint; this invocation exclusively owns row
        // `r`'s span of the output.
        let outr = unsafe { std::slice::from_raw_parts_mut(pout.get().add(v0), nx) };
        let inner = g.interior_xs(r, StencilSide::Plus);
        match strategy {
            Strategy::Auto => {
                // fused plain loop with affine offsets
                for ix in inner.clone() {
                    let v = v0 + ix;
                    let c = &mut outr[ix].0;
                    let (e00, e10, e01, e11) =
                        (f.ex[v], f.ex[v + sy], f.ex[v + sz], f.ex[v + sy + sz]);
                    c[EX0] = 0.25 * (e00 + e10 + e01 + e11);
                    c[DEXDY] = 0.25 * ((e10 + e11) - (e00 + e01));
                    c[DEXDZ] = 0.25 * ((e01 + e11) - (e00 + e10));
                    c[D2EXDYDZ] = 0.25 * ((e00 + e11) - (e10 + e01));
                    let (e00, e10, e01, e11) =
                        (f.ey[v], f.ey[v + sz], f.ey[v + 1], f.ey[v + sz + 1]);
                    c[EY0] = 0.25 * (e00 + e10 + e01 + e11);
                    c[DEYDZ] = 0.25 * ((e10 + e11) - (e00 + e01));
                    c[DEYDX] = 0.25 * ((e01 + e11) - (e00 + e10));
                    c[D2EYDZDX] = 0.25 * ((e00 + e11) - (e10 + e01));
                    let (e00, e10, e01, e11) =
                        (f.ez[v], f.ez[v + 1], f.ez[v + sy], f.ez[v + 1 + sy]);
                    c[EZ0] = 0.25 * (e00 + e10 + e01 + e11);
                    c[DEZDX] = 0.25 * ((e10 + e11) - (e00 + e01));
                    c[DEZDY] = 0.25 * ((e01 + e11) - (e00 + e10));
                    c[D2EZDXDY] = 0.25 * ((e00 + e11) - (e10 + e01));
                    c[CBX0] = 0.5 * (f.bx[v] + f.bx[v + 1]);
                    c[DCBXDX] = 0.5 * (f.bx[v + 1] - f.bx[v]);
                    c[CBY0] = 0.5 * (f.by[v] + f.by[v + sy]);
                    c[DCBYDY] = 0.5 * (f.by[v + sy] - f.by[v]);
                    c[CBZ0] = 0.5 * (f.bz[v] + f.bz[v + sz]);
                    c[DCBZDZ] = 0.5 * (f.bz[v + sz] - f.bz[v]);
                }
            }
            Strategy::Guided => split_passes::<f32>(f, sy, sz, outr, v0, inner.clone()),
            Strategy::Manual => split_passes::<SimdF32<4>>(f, sy, sz, outr, v0, inner.clone()),
            Strategy::AdHoc => split_passes::<V4F32>(f, sy, sz, outr, v0, inner.clone()),
        }
        // boundary shell: general periodic path
        for ix in (0..inner.start).chain(inner.end..nx) {
            load_cell_wrapped(f, v0 + ix, &mut outr[ix].0);
        }
    });
}

/// Compute the interpolator array from the current fields (VPIC's
/// `load_interpolator_array`). One record per cell.
///
/// This is the serial wrapped-path reference (and back-compat
/// convenience): it allocates a fresh `Vec` per call. The simulation loop
/// uses [`load_interpolators_into`] with a persistent
/// [`InterpolatorArray`] instead.
#[allow(clippy::needless_range_loop)] // voxel-indexed sweep matches the math
pub fn load_interpolators(f: &FieldArray) -> Vec<Interpolator> {
    let n = f.grid.cells();
    let mut out = vec![Interpolator::default(); n];
    for v in 0..n {
        load_cell_wrapped(f, v, &mut out[v].0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;

    #[test]
    fn record_is_18_floats() {
        assert_eq!(COEFFS, 18);
        assert_eq!(std::mem::size_of::<Interpolator>(), 18 * 4);
    }

    #[test]
    fn uniform_field_interpolates_to_itself_everywhere() {
        let g = Grid::new(4, 4, 4);
        let mut f = FieldArray::new(g);
        f.ex.fill(2.0);
        f.ey.fill(-1.0);
        f.ez.fill(0.5);
        f.bx.fill(3.0);
        f.by.fill(-0.25);
        f.bz.fill(1.0);
        let interp = load_interpolators(&f);
        for ip in &interp {
            for &(x, y, z) in &[(0.0f32, 0.0f32, 0.0f32), (1.0, -1.0, 0.5), (-0.3, 0.7, -0.9)] {
                let (ex, ey, ez) = ip.e_at(x, y, z);
                assert!((ex - 2.0).abs() < 1e-6);
                assert!((ey + 1.0).abs() < 1e-6);
                assert!((ez - 0.5).abs() < 1e-6);
                let (bx, by, bz) = ip.b_at(x, y, z);
                assert!((bx - 3.0).abs() < 1e-6);
                assert!((by + 0.25).abs() < 1e-6);
                assert!((bz - 1.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn ex_edge_values_recovered_at_corners() {
        // distinct values on the four x-edges of one cell
        let g = Grid::new(3, 3, 3);
        let mut f = FieldArray::new(g.clone());
        let v = g.voxel(1, 1, 1);
        let yp = g.neighbor(v, (0, 1, 0));
        let zp = g.neighbor(v, (0, 0, 1));
        let ypzp = g.neighbor(v, (0, 1, 1));
        f.ex[v] = 1.0; // (y−, z−)
        f.ex[yp] = 2.0; // (y+, z−)
        f.ex[zp] = 3.0; // (y−, z+)
        f.ex[ypzp] = 4.0; // (y+, z+)
        let ip = load_interpolators(&f)[v];
        assert!((ip.e_at(0.0, -1.0, -1.0).0 - 1.0).abs() < 1e-6);
        assert!((ip.e_at(0.0, 1.0, -1.0).0 - 2.0).abs() < 1e-6);
        assert!((ip.e_at(0.0, -1.0, 1.0).0 - 3.0).abs() < 1e-6);
        assert!((ip.e_at(0.0, 1.0, 1.0).0 - 4.0).abs() < 1e-6);
        // center is the mean
        assert!((ip.e_at(0.0, 0.0, 0.0).0 - 2.5).abs() < 1e-6);
    }

    #[test]
    fn bx_face_values_recovered() {
        let g = Grid::new(3, 2, 2);
        let mut f = FieldArray::new(g.clone());
        let v = g.voxel(0, 0, 0);
        let xp = g.neighbor(v, (1, 0, 0));
        f.bx[v] = 10.0;
        f.bx[xp] = 20.0;
        let ip = load_interpolators(&f)[v];
        assert!((ip.b_at(-1.0, 0.0, 0.0).0 - 10.0).abs() < 1e-6);
        assert!((ip.b_at(1.0, 0.0, 0.0).0 - 20.0).abs() < 1e-6);
        assert!((ip.b_at(0.0, 0.0, 0.0).0 - 15.0).abs() < 1e-6);
    }

    #[test]
    fn load_into_matches_reference_bitwise_for_all_strategies() {
        let threads = pk::Threads::new(3);
        for (nx, ny, nz) in [(6, 5, 4), (2, 2, 2), (1, 4, 4), (5, 1, 3), (1, 1, 1)] {
            let g = Grid::new(nx, ny, nz);
            let mut f = FieldArray::new(g.clone());
            for v in 0..g.cells() {
                let x = v as f32;
                f.ex[v] = (x * 0.618).sin();
                f.ey[v] = (x * 0.414).cos();
                f.ez[v] = (x * 0.732).sin();
                f.bx[v] = (x * 0.271).cos();
                f.by[v] = (x * 0.161).sin();
                f.bz[v] = (x * 0.577).cos();
            }
            let reference = load_interpolators(&f);
            let mut buf = InterpolatorArray::new();
            for strategy in Strategy::ALL {
                load_interpolators_into(&pk::Serial, strategy, &f, &mut buf);
                assert_eq!(buf.len(), reference.len());
                for (v, (a, b)) in reference.iter().zip(buf.as_slice()).enumerate() {
                    for k in 0..COEFFS {
                        assert_eq!(
                            a.0[k].to_bits(),
                            b.0[k].to_bits(),
                            "serial cell {v} coeff {k} {strategy:?} ({nx},{ny},{nz})"
                        );
                    }
                }
                load_interpolators_into(&threads, strategy, &f, &mut buf);
                for (v, (a, b)) in reference.iter().zip(buf.as_slice()).enumerate() {
                    assert_eq!(a, b, "threads cell {v} {strategy:?} ({nx},{ny},{nz})");
                }
            }
        }
    }

    #[test]
    fn reload_into_does_not_reallocate() {
        let g = Grid::new(8, 6, 4);
        let mut f = FieldArray::new(g);
        let mut buf = InterpolatorArray::new();
        assert!(buf.is_empty());
        load_interpolators_into(&pk::Serial, Strategy::Auto, &f, &mut buf);
        let cap = buf.capacity();
        assert!(cap >= buf.len());
        f.ex.fill(1.0);
        for strategy in Strategy::ALL {
            load_interpolators_into(&pk::Serial, strategy, &f, &mut buf);
            assert_eq!(buf.capacity(), cap, "{strategy:?} reallocated");
        }
    }

    #[test]
    fn interpolation_is_continuous_across_shared_edges() {
        // neighboring cells must agree on E at their shared boundary:
        // evaluate ex at the shared (y=+1 of cell v) == (y=−1 of cell v+y)
        let g = Grid::new(4, 4, 4);
        let mut f = FieldArray::new(g.clone());
        for (i, e) in f.ex.iter_mut().enumerate() {
            *e = (i as f32 * 0.618).sin();
        }
        let interp = load_interpolators(&f);
        let v = g.voxel(1, 1, 1);
        let vy = g.neighbor(v, (0, 1, 0));
        for &z in &[-1.0f32, -0.5, 0.0, 0.5, 1.0] {
            let top = interp[v].e_at(0.0, 1.0, z).0;
            let bottom = interp[vy].e_at(0.0, -1.0, z).0;
            assert!((top - bottom).abs() < 1e-6, "discontinuity at z={z}");
        }
    }
}
