//! Particle species with VPIC's storage layout.
//!
//! Particles are SoA: cell-relative offsets `dx, dy, dz ∈ [-1, 1]`, the
//! owning cell's voxel index `i`, normalized momentum `ux, uy, uz`
//! (γβ components), and a statistical weight `w`. Keeping the cell index
//! explicit is what makes "sort particles by cell index" (the paper's
//! §3.2) a plain key/value sort.

use crate::grid::Grid;
use psort::SortOrder;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Reusable sorting workspace: sort keys, permutation, and the cycle-walk
/// bitmap. Capacities persist across sorts so a steady-state simulation
/// allocates nothing per sort after the first.
#[derive(Debug, Clone, Default)]
struct SortScratch {
    keys: Vec<u32>,
    perm: Vec<usize>,
    done: Vec<bool>,
}

/// A single particle by value — the unit that migrates between ranks.
/// `cell` is in the coordinate system of whichever grid the record is
/// currently addressed to (the multi-rank driver rewrites it in flight).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParticleRecord {
    /// Cell-relative x offset, in `[-1, 1]`.
    pub dx: f32,
    /// Cell-relative y offset.
    pub dy: f32,
    /// Cell-relative z offset.
    pub dz: f32,
    /// Owning cell voxel index.
    pub cell: u32,
    /// Normalized momentum γβx.
    pub ux: f32,
    /// Normalized momentum γβy.
    pub uy: f32,
    /// Normalized momentum γβz.
    pub uz: f32,
    /// Statistical weight.
    pub w: f32,
}

/// One particle species (electrons, ions, …).
#[derive(Debug, Clone)]
pub struct Species {
    /// Display name.
    pub name: String,
    /// Charge in normalized units.
    pub q: f32,
    /// Mass in normalized units.
    pub m: f32,
    /// Cell-relative x offset per particle, in `[-1, 1]`.
    pub dx: Vec<f32>,
    /// Cell-relative y offset.
    pub dy: Vec<f32>,
    /// Cell-relative z offset.
    pub dz: Vec<f32>,
    /// Owning cell voxel index.
    pub cell: Vec<u32>,
    /// Normalized momentum γβx.
    pub ux: Vec<f32>,
    /// Normalized momentum γβy.
    pub uy: Vec<f32>,
    /// Normalized momentum γβz.
    pub uz: Vec<f32>,
    /// Statistical weight.
    pub w: Vec<f32>,
    /// The order the arrays are currently known to be in, if any. `None`
    /// after loading, after cell crossings, or after any other mutation
    /// routed through this struct's methods; direct field writes do not
    /// dirty it (callers doing that should [`Species::mark_unsorted`]).
    last_sort: Option<SortOrder>,
    scratch: SortScratch,
}

impl Species {
    /// An empty species.
    pub fn new(name: impl Into<String>, q: f32, m: f32) -> Self {
        assert!(m > 0.0, "mass must be positive");
        Self {
            name: name.into(),
            q,
            m,
            dx: Vec::new(),
            dy: Vec::new(),
            dz: Vec::new(),
            cell: Vec::new(),
            ux: Vec::new(),
            uy: Vec::new(),
            uz: Vec::new(),
            w: Vec::new(),
            last_sort: None,
            scratch: SortScratch::default(),
        }
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.cell.len()
    }

    /// True when the species holds no particles.
    pub fn is_empty(&self) -> bool {
        self.cell.is_empty()
    }

    /// Append one particle.
    #[allow(clippy::too_many_arguments)]
    pub fn push_particle(
        &mut self,
        dx: f32,
        dy: f32,
        dz: f32,
        cell: u32,
        ux: f32,
        uy: f32,
        uz: f32,
        w: f32,
    ) {
        debug_assert!((-1.0..=1.0).contains(&dx));
        debug_assert!((-1.0..=1.0).contains(&dy));
        debug_assert!((-1.0..=1.0).contains(&dz));
        self.dx.push(dx);
        self.dy.push(dy);
        self.dz.push(dz);
        self.cell.push(cell);
        self.ux.push(ux);
        self.uy.push(uy);
        self.uz.push(uz);
        self.w.push(w);
        self.last_sort = None;
    }

    /// Copy out particle `p` as a by-value record (for rank migration).
    pub fn record(&self, p: usize) -> ParticleRecord {
        ParticleRecord {
            dx: self.dx[p],
            dy: self.dy[p],
            dz: self.dz[p],
            cell: self.cell[p],
            ux: self.ux[p],
            uy: self.uy[p],
            uz: self.uz[p],
            w: self.w[p],
        }
    }

    /// Append a migrated particle record.
    pub fn push_record(&mut self, r: &ParticleRecord) {
        self.push_particle(r.dx, r.dy, r.dz, r.cell, r.ux, r.uy, r.uz, r.w);
    }

    /// Remove the particles at `indices` (strictly ascending), appending
    /// their records to `out` in that order; surviving particles keep
    /// their relative order (stable one-pass compaction). This is the
    /// migrant drain of the multi-rank exchange: ascending-index order
    /// makes the outgoing stream deterministic for a given array state.
    pub fn drain_sorted_indices(&mut self, indices: &[usize], out: &mut Vec<ParticleRecord>) {
        if indices.is_empty() {
            return;
        }
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]), "indices must ascend");
        out.reserve(indices.len());
        for &p in indices {
            out.push(self.record(p));
        }
        let n = self.len();
        let mut write = indices[0];
        let mut next = 0usize;
        for read in indices[0]..n {
            if next < indices.len() && indices[next] == read {
                next += 1;
                continue;
            }
            self.dx[write] = self.dx[read];
            self.dy[write] = self.dy[read];
            self.dz[write] = self.dz[read];
            self.cell[write] = self.cell[read];
            self.ux[write] = self.ux[read];
            self.uy[write] = self.uy[read];
            self.uz[write] = self.uz[read];
            self.w[write] = self.w[read];
            write += 1;
        }
        self.dx.truncate(write);
        self.dy.truncate(write);
        self.dz.truncate(write);
        self.cell.truncate(write);
        self.ux.truncate(write);
        self.uy.truncate(write);
        self.uz.truncate(write);
        self.w.truncate(write);
        self.last_sort = None;
    }

    /// Seed `n` particles uniformly over the grid with a Maxwellian-ish
    /// (Gaussian per component) momentum spread `vth` plus drift
    /// `(ux0, uy0, uz0)`.
    pub fn load_uniform(
        &mut self,
        grid: &Grid,
        n: usize,
        vth: f32,
        drift: (f32, f32, f32),
        weight: f32,
        seed: u64,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cells = grid.cells() as u32;
        for _ in 0..n {
            let cell = rng.gen_range(0..cells);
            // Box-Muller pairs for the thermal spread
            let gauss = |rng: &mut ChaCha8Rng| -> f32 {
                let u1: f32 = rng.gen_range(1e-7..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
            };
            self.push_particle(
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                cell,
                drift.0 + vth * gauss(&mut rng),
                drift.1 + vth * gauss(&mut rng),
                drift.2 + vth * gauss(&mut rng),
                weight,
            );
        }
    }

    /// Lorentz factor of particle `p`.
    #[inline(always)]
    pub fn gamma(&self, p: usize) -> f32 {
        (1.0 + self.ux[p] * self.ux[p] + self.uy[p] * self.uy[p] + self.uz[p] * self.uz[p]).sqrt()
    }

    /// Total kinetic energy `Σ w·m·(γ−1)` (normalized units, `c = 1`).
    pub fn kinetic_energy(&self) -> f64 {
        let mut total = 0.0f64;
        for p in 0..self.len() {
            total += (self.w[p] * self.m) as f64 * (self.gamma(p) as f64 - 1.0);
        }
        total
    }

    /// Total momentum `Σ w·m·u` per component.
    pub fn momentum(&self) -> (f64, f64, f64) {
        let mut px = 0.0f64;
        let mut py = 0.0f64;
        let mut pz = 0.0f64;
        for p in 0..self.len() {
            let wm = (self.w[p] * self.m) as f64;
            px += wm * self.ux[p] as f64;
            py += wm * self.uy[p] as f64;
            pz += wm * self.uz[p] as f64;
        }
        (px, py, pz)
    }

    /// Total charge `Σ w·q`.
    pub fn charge(&self) -> f64 {
        self.w.iter().map(|&w| (w * self.q) as f64).sum()
    }

    /// Reorder the particle arrays by cell index under `order` — the
    /// paper's sorting hook. All eight SoA arrays move in tandem.
    ///
    /// Returns `false` (and does nothing) when the arrays are already in
    /// `order` and nothing has dirtied them since — so a freshly sorted
    /// population re-sorted on the next scheduled step costs nothing.
    /// `Random` is never skipped: re-shuffling is a new permutation each
    /// time, not an idempotent arrangement.
    ///
    /// Sorting reuses a persistent per-species scratch workspace (keys,
    /// permutation, cycle bitmap): after the first sort at a given
    /// population size, later sorts at this level allocate nothing.
    pub fn sort(&mut self, order: SortOrder) -> bool {
        if self.last_sort == Some(order) && order != SortOrder::Random {
            // the skip serves the cached "already sorted" claim — verify
            // it in debug builds, since a caller that mutated the public
            // SoA fields without mark_unsorted() would otherwise get a
            // silently stale skip here
            self.debug_validate_sorted();
            return false;
        }
        let SortScratch { keys, perm, done } = &mut self.scratch;
        keys.clear();
        keys.extend_from_slice(&self.cell);
        perm.clear();
        perm.extend(0..self.cell.len());
        psort::sort_pairs(order, keys, perm);
        self.cell.copy_from_slice(keys);
        for arr in [
            &mut self.dx,
            &mut self.dy,
            &mut self.dz,
            &mut self.ux,
            &mut self.uy,
            &mut self.uz,
            &mut self.w,
        ] {
            pk::sort::permute_in_place_with(perm, arr, done);
        }
        self.last_sort = Some(order);
        true
    }

    /// The order the arrays are known to be in, if any.
    pub fn current_order(&self) -> Option<SortOrder> {
        self.last_sort
    }

    /// Forget the known ordering, forcing the next [`Species::sort`] to
    /// run. The simulation loop calls this when cell crossings move
    /// particles out of their sorted positions; callers that mutate the
    /// SoA fields directly should call it too.
    pub fn mark_unsorted(&mut self) {
        self.last_sort = None;
    }

    /// Restore path only: adopt a checkpointed `last_sort` claim without
    /// re-sorting. The checkpoint layer restores the particle arrays
    /// bit-exactly alongside this, and validates the claim in debug
    /// builds via [`Species::debug_validate_sorted`].
    pub(crate) fn set_order_hint(&mut self, order: Option<SortOrder>) {
        self.last_sort = order;
    }

    /// Debug-assertion guard for the `last_sort` skip cache: check that
    /// the cell array really is in the claimed order. Valid because every
    /// non-`Random` order is a pure function of the key multiset, so an
    /// array genuinely in that order re-sorts to itself; any divergence
    /// means particles were mutated without [`Species::mark_unsorted`]
    /// and the skip cache would serve stale answers. O(n log n), debug
    /// builds only; release builds compile to nothing.
    pub fn debug_validate_sorted(&self) {
        #[cfg(debug_assertions)]
        if let Some(order) = self.last_sort {
            if order == SortOrder::Random {
                return;
            }
            let mut keys = self.cell.clone();
            let mut tags: Vec<usize> = (0..keys.len()).collect();
            psort::sort_pairs(order, &mut keys, &mut tags);
            assert_eq!(
                keys, self.cell,
                "species {:?}: cell array is not in the claimed {order} order — \
                 particles were mutated without mark_unsorted()",
                self.name
            );
        }
    }

    /// The record permutation applied by the most recent [`Species::sort`]
    /// (`perm[i]` = pre-sort index of the particle now at `i`). Valid
    /// immediately after a `sort` call that returned `true`; accounting
    /// spaces cost the sort's gather traffic from it.
    pub fn sort_perm(&self) -> &[usize] {
        &self.scratch.perm
    }

    /// Capacities of the persistent sort scratch `(keys, perm, done)` —
    /// exposed so tests can assert no-alloc-after-warmup.
    pub fn sort_scratch_capacities(&self) -> (usize, usize, usize) {
        (self.scratch.keys.capacity(), self.scratch.perm.capacity(), self.scratch.done.capacity())
    }

    /// True when particle data is self-consistent (offsets in range,
    /// cells in range, finite momenta). Used by tests and debug asserts.
    pub fn validate(&self, grid: &Grid) -> Result<(), String> {
        let cells = grid.cells() as u32;
        for p in 0..self.len() {
            if !(-1.0..=1.0).contains(&self.dx[p])
                || !(-1.0..=1.0).contains(&self.dy[p])
                || !(-1.0..=1.0).contains(&self.dz[p])
            {
                return Err(format!(
                    "particle {p} offsets out of range: ({}, {}, {})",
                    self.dx[p], self.dy[p], self.dz[p]
                ));
            }
            if self.cell[p] >= cells {
                return Err(format!("particle {p} cell {} out of range", self.cell[p]));
            }
            if !self.ux[p].is_finite() || !self.uy[p].is_finite() || !self.uz[p].is_finite() {
                return Err(format!("particle {p} momentum not finite"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_count() {
        let mut s = Species::new("e", -1.0, 1.0);
        assert!(s.is_empty());
        s.push_particle(0.0, 0.5, -0.5, 3, 0.1, 0.0, 0.0, 1.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.cell[0], 3);
    }

    #[test]
    fn uniform_load_is_valid_and_deterministic() {
        let g = Grid::new(8, 8, 8);
        let mut a = Species::new("e", -1.0, 1.0);
        a.load_uniform(&g, 1000, 0.1, (0.0, 0.0, 0.0), 1.0, 42);
        assert_eq!(a.len(), 1000);
        a.validate(&g).unwrap();
        let mut b = Species::new("e", -1.0, 1.0);
        b.load_uniform(&g, 1000, 0.1, (0.0, 0.0, 0.0), 1.0, 42);
        assert_eq!(a.cell, b.cell);
        assert_eq!(a.ux, b.ux);
    }

    #[test]
    fn thermal_load_statistics() {
        let g = Grid::new(4, 4, 4);
        let mut s = Species::new("e", -1.0, 1.0);
        let vth = 0.05;
        s.load_uniform(&g, 20_000, vth, (0.2, 0.0, 0.0), 1.0, 7);
        let n = s.len() as f64;
        let mean_ux: f64 = s.ux.iter().map(|&u| u as f64).sum::<f64>() / n;
        assert!((mean_ux - 0.2).abs() < 0.005, "drift recovered: {mean_ux}");
        let var_uy: f64 = s.uy.iter().map(|&u| (u as f64).powi(2)).sum::<f64>() / n;
        assert!(
            (var_uy.sqrt() - vth as f64).abs() < 0.005,
            "thermal spread recovered: {}",
            var_uy.sqrt()
        );
    }

    #[test]
    fn gamma_and_energy() {
        let mut s = Species::new("e", -1.0, 1.0);
        s.push_particle(0.0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 1.0);
        s.push_particle(0.0, 0.0, 0.0, 0, 3.0, 0.0, 4.0, 2.0);
        assert_eq!(s.gamma(0), 1.0);
        assert!((s.gamma(1) - 26.0f32.sqrt()).abs() < 1e-6);
        let ke = s.kinetic_energy();
        assert!((ke - 2.0 * (26.0f64.sqrt() - 1.0)).abs() < 1e-5);
        assert_eq!(s.charge(), -3.0);
        let (px, _, pz) = s.momentum();
        assert!((px - 6.0).abs() < 1e-6);
        assert!((pz - 8.0).abs() < 1e-6);
    }

    #[test]
    fn sort_keeps_particles_intact() {
        let g = Grid::new(4, 4, 4);
        let mut s = Species::new("e", -1.0, 1.0);
        s.load_uniform(&g, 500, 0.1, (0.0, 0.0, 0.0), 1.0, 3);
        let ke0 = s.kinetic_energy();
        let q0 = s.charge();
        // pair each particle's cell with a fingerprint of its state
        let mut pairs0: Vec<(u32, u32)> = (0..s.len())
            .map(|p| (s.cell[p], s.ux[p].to_bits()))
            .collect();
        for order in SortOrder::fig7_set(16) {
            s.sort(order);
            s.validate(&g).unwrap();
            assert!((s.kinetic_energy() - ke0).abs() < 1e-9);
            assert_eq!(s.charge(), q0);
            let mut pairs: Vec<(u32, u32)> = (0..s.len())
                .map(|p| (s.cell[p], s.ux[p].to_bits()))
                .collect();
            pairs.sort_unstable();
            pairs0.sort_unstable();
            assert_eq!(pairs, pairs0, "sort broke cell↔momentum pairing ({order})");
        }
    }

    #[test]
    fn sort_skips_when_already_in_requested_order() {
        let g = Grid::new(4, 4, 4);
        let mut s = Species::new("e", -1.0, 1.0);
        s.load_uniform(&g, 300, 0.1, (0.0, 0.0, 0.0), 1.0, 5);
        assert_eq!(s.current_order(), None, "loading dirties the order");
        assert!(s.sort(SortOrder::Standard));
        assert_eq!(s.current_order(), Some(SortOrder::Standard));
        let before = s.cell.clone();
        assert!(!s.sort(SortOrder::Standard), "idempotent re-sort must be skipped");
        assert_eq!(s.cell, before);
        // a different order is real work again
        assert!(s.sort(SortOrder::Strided));
        // crossings (or any dirtying) re-enable the sort
        s.sort(SortOrder::Standard);
        s.mark_unsorted();
        assert!(s.sort(SortOrder::Standard));
        // Random is a fresh shuffle every time, never skipped
        assert!(s.sort(SortOrder::Random));
        assert!(s.sort(SortOrder::Random));
        // appending a particle dirties the order too
        s.sort(SortOrder::Standard);
        s.push_particle(0.0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 1.0);
        assert!(s.sort(SortOrder::Standard));
    }

    #[test]
    fn sort_scratch_does_not_reallocate_after_warmup() {
        let g = Grid::new(4, 4, 4);
        let mut s = Species::new("e", -1.0, 1.0);
        s.load_uniform(&g, 1000, 0.1, (0.0, 0.0, 0.0), 1.0, 13);
        // warmup: one sort sizes every scratch buffer to the population
        s.sort(SortOrder::Standard);
        let warm = s.sort_scratch_capacities();
        assert!(warm.0 >= s.len() && warm.1 >= s.len() && warm.2 >= s.len());
        // steady state: alternating orders with dirtying in between must
        // leave every capacity untouched
        for order in [
            SortOrder::Strided,
            SortOrder::Standard,
            SortOrder::TiledStrided { tile: 8 },
            SortOrder::Standard,
        ] {
            s.mark_unsorted();
            assert!(s.sort(order));
            assert_eq!(
                s.sort_scratch_capacities(),
                warm,
                "sort scratch must not reallocate after warmup ({order})"
            );
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "without mark_unsorted")]
    fn unmarked_mutation_is_caught_by_the_skip_guard() {
        // the bug class the guard exists for: mutate the public SoA
        // fields after a sort, skip mark_unsorted(), and re-sort — the
        // skip path must trip the debug assertion instead of silently
        // serving the stale "already sorted" claim
        let g = Grid::new(4, 4, 4);
        let mut s = Species::new("e", -1.0, 1.0);
        s.load_uniform(&g, 100, 0.1, (0.0, 0.0, 0.0), 1.0, 21);
        s.sort(SortOrder::Standard);
        s.cell.swap(0, 99); // direct mutation, no mark_unsorted()
        s.sort(SortOrder::Standard);
    }

    #[test]
    fn marked_mutation_passes_the_skip_guard() {
        let g = Grid::new(4, 4, 4);
        let mut s = Species::new("e", -1.0, 1.0);
        s.load_uniform(&g, 100, 0.1, (0.0, 0.0, 0.0), 1.0, 21);
        for order in [SortOrder::Standard, SortOrder::Strided, SortOrder::TiledStrided { tile: 8 }]
        {
            s.sort(order);
            s.debug_validate_sorted();
            assert!(!s.sort(order), "clean skip after a real sort");
            // the sanctioned path: mutate, mark, re-sort
            s.cell.swap(0, 99);
            s.mark_unsorted();
            assert!(s.sort(order));
            s.debug_validate_sorted();
        }
    }

    #[test]
    fn standard_sort_orders_cells() {
        let g = Grid::new(4, 4, 4);
        let mut s = Species::new("e", -1.0, 1.0);
        s.load_uniform(&g, 200, 0.1, (0.0, 0.0, 0.0), 1.0, 9);
        s.sort(SortOrder::Standard);
        assert!(s.cell.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn validate_catches_bad_cell() {
        let g = Grid::new(2, 2, 2);
        let mut s = Species::new("e", -1.0, 1.0);
        s.push_particle(0.0, 0.0, 0.0, 100, 0.0, 0.0, 0.0, 1.0);
        assert!(s.validate(&g).is_err());
    }

    #[test]
    fn drain_sorted_indices_is_stable_and_order_preserving() {
        let g = Grid::new(4, 4, 4);
        let mut s = Species::new("e", -1.0, 1.0);
        s.load_uniform(&g, 10, 0.1, (0.0, 0.0, 0.0), 1.0, 3);
        let before: Vec<ParticleRecord> = (0..10).map(|p| s.record(p)).collect();
        let mut out = Vec::new();
        s.drain_sorted_indices(&[0, 3, 4, 9], &mut out);
        assert_eq!(out, vec![before[0], before[3], before[4], before[9]]);
        let kept: Vec<ParticleRecord> = (0..s.len()).map(|p| s.record(p)).collect();
        let expect: Vec<ParticleRecord> =
            [1, 2, 5, 6, 7, 8].iter().map(|&p| before[p]).collect();
        assert_eq!(kept, expect);
        // draining nothing is a no-op
        let n = s.len();
        s.drain_sorted_indices(&[], &mut out);
        assert_eq!(s.len(), n);
        // records round-trip through push_record
        let mut t = Species::new("t", -1.0, 1.0);
        for r in &out {
            t.push_record(r);
        }
        assert_eq!((0..t.len()).map(|p| t.record(p)).collect::<Vec<_>>(), out);
    }
}
