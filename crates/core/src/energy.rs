//! Energy and conservation diagnostics.
//!
//! VPIC emits an energy ledger (field + per-species kinetic) every few
//! steps; decks judge health by its drift. Same here: the snapshot is the
//! contract the integration tests check, and the time series is what the
//! Weibel example plots.

use crate::sim::Simulation;
use serde::Serialize;

/// One energy ledger entry.
#[derive(Debug, Clone, Serialize)]
pub struct EnergySnapshot {
    /// Simulation time.
    pub time: f64,
    /// Electric field energy.
    pub field_e: f64,
    /// Magnetic field energy.
    pub field_b: f64,
    /// Kinetic energy per species, in species order.
    pub kinetic: Vec<f64>,
}

impl EnergySnapshot {
    /// Capture the ledger from a simulation.
    pub fn capture(sim: &Simulation) -> Self {
        let (field_e, field_b) = sim.fields.energies();
        Self {
            time: sim.time(),
            field_e,
            field_b,
            kinetic: sim.species.iter().map(|s| s.kinetic_energy()).collect(),
        }
    }

    /// Total energy (fields + all species).
    pub fn total(&self) -> f64 {
        self.field_e + self.field_b + self.kinetic.iter().sum::<f64>()
    }
}

/// A recorded energy history.
#[derive(Debug, Default, Clone, Serialize)]
pub struct EnergyHistory {
    /// Snapshots in time order.
    pub entries: Vec<EnergySnapshot>,
}

impl EnergyHistory {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the current state.
    pub fn record(&mut self, sim: &Simulation) {
        self.entries.push(sim.energies());
    }

    /// Relative drift of total energy from the first entry, at entry `i`
    /// (0.0 when the history is empty, `i` is out of range, or the
    /// baseline is zero).
    pub fn drift(&self, i: usize) -> f64 {
        let e0 = self.entries.first().map(|e| e.total()).unwrap_or(0.0);
        if e0 == 0.0 {
            return 0.0;
        }
        match self.entries.get(i) {
            Some(e) => (e.total() - e0) / e0,
            None => 0.0,
        }
    }

    /// Worst absolute relative drift across the history.
    pub fn max_drift(&self) -> f64 {
        (0..self.entries.len())
            .map(|i| self.drift(i).abs())
            .fold(0.0, f64::max)
    }

    /// Magnetic field energy series (the Weibel growth observable).
    pub fn field_b_series(&self) -> Vec<(f64, f64)> {
        self.entries.iter().map(|e| (e.time, e.field_b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use crate::species::Species;

    fn small_sim() -> Simulation {
        let grid = Grid::new(4, 4, 4);
        let mut sim = Simulation::new(grid.clone());
        let mut e = Species::new("e", -1.0, 1.0);
        e.load_uniform(&grid, 100, 0.1, (0.0, 0.0, 0.0), 1.0, 5);
        sim.add_species(e);
        sim
    }

    #[test]
    fn snapshot_totals_add_up() {
        let sim = small_sim();
        let snap = sim.energies();
        assert_eq!(snap.kinetic.len(), 1);
        assert!(snap.kinetic[0] > 0.0);
        assert_eq!(snap.field_e, 0.0);
        assert!((snap.total() - snap.kinetic[0]).abs() < 1e-12);
    }

    #[test]
    fn history_tracks_drift() {
        let mut sim = small_sim();
        let mut h = EnergyHistory::new();
        h.record(&sim);
        sim.run(5);
        h.record(&sim);
        assert_eq!(h.entries.len(), 2);
        assert!(h.max_drift() < 0.5);
        assert_eq!(h.drift(0), 0.0);
        assert_eq!(h.field_b_series().len(), 2);
    }

    #[test]
    fn empty_history_is_harmless() {
        let h = EnergyHistory::new();
        assert_eq!(h.max_drift(), 0.0);
        assert!(h.field_b_series().is_empty());
    }
}
