//! The particle push kernel — the paper's hot spot.
//!
//! Per particle: gather the cell's 18-float interpolator, evaluate E and
//! B at the particle, apply the relativistic Boris rotation, advance the
//! position, and deposit charge-conserving current for every within-cell
//! trajectory segment (splitting at cell boundaries, as VPIC's mover
//! does).
//!
//! The kernel is implemented in the paper's four vectorization strategies
//! (Fig 4). The *gather* (cell-indexed interpolator load) and the
//! *mover/deposit* (scatter with conflicts) are scalar in every strategy
//! — exactly VPIC's structure, where those stages go through dedicated
//! transpose/accumulator machinery — while the field evaluation and Boris
//! arithmetic differ:
//!
//! * **auto** — one plain loop, vectorization left to LLVM;
//! * **guided** — the kernel split into a gather pass, a chunked
//!   arithmetic pass over SoA scratch, and a scalar mover pass;
//! * **manual** — 4-particle groups in portable [`vsimd::simd`] lanes;
//! * **ad hoc** — 4-particle groups in SSE [`vsimd::v4::V4F32`] lanes.

use crate::accumulate::Accumulator;
use crate::grid::Grid;
use crate::interp::Interpolator;
use crate::species::Species;
use pk::{ExecSpace, RangePolicy, Serial, Sum};
use std::ops::Range;
use vsimd::simd::SimdF32;
use vsimd::v4::V4F32;
use vsimd::Strategy;

/// Precomputed per-species push coefficients.
#[derive(Debug, Clone, Copy)]
pub struct PushParams {
    /// `q·dt / (2m)` — the half-kick coefficient.
    pub qdt_2m: f32,
    /// Offset displacement per unit momentum-over-gamma: `2·dt/dx`.
    pub cdt_dx2: f32,
    /// `2·dt/dy`.
    pub cdt_dy2: f32,
    /// `2·dt/dz`.
    pub cdt_dz2: f32,
}

impl PushParams {
    /// Coefficients for `species` on `grid`.
    pub fn new(grid: &Grid, q: f32, m: f32) -> Self {
        Self {
            qdt_2m: q * grid.dt / (2.0 * m),
            cdt_dx2: 2.0 * grid.dt / grid.dx,
            cdt_dy2: 2.0 * grid.dt / grid.dy,
            cdt_dz2: 2.0 * grid.dt / grid.dz,
        }
    }
}

/// Statistics from one push call.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PushStats {
    /// Particles pushed.
    pub pushed: usize,
    /// Cell-boundary crossings handled by the mover.
    pub crossings: usize,
}

/// Push every particle of `species` one step under `strategy`, serially
/// on the calling thread.
///
/// `interps` must hold one record per grid cell (from
/// [`crate::interp::load_interpolators`]); deposits go into `acc`.
pub fn push_species(
    strategy: Strategy,
    grid: &Grid,
    species: &mut Species,
    interps: &[Interpolator],
    acc: &Accumulator,
) -> PushStats {
    push_species_on(&Serial, strategy, grid, species, interps, acc)
}

/// Push every particle of `species` one step under `strategy`,
/// distributing contiguous particle blocks over `space`'s workers.
///
/// Each block deposits with its block index as the accumulator worker id,
/// so in [`pk::atomic::ScatterMode::Duplicated`] the accumulator should be
/// built with at least `space.concurrency()` workers for contention-free
/// replicas (fewer is safe — ids wrap onto the replicas — just contended).
///
/// Per-particle state (positions, momenta, cells) and the crossing count
/// are bit-identical to [`push_species`]: particles are independent and
/// blocks are reduced in block order. Only the *order* of same-cell
/// current additions differs, so accumulated currents match the serial
/// push to f64-rounding of the summation order (≲1e-12 relative).
pub fn push_species_on<S: ExecSpace>(
    space: &S,
    strategy: Strategy,
    grid: &Grid,
    species: &mut Species,
    interps: &[Interpolator],
    acc: &Accumulator,
) -> PushStats {
    assert_eq!(interps.len(), grid.cells(), "interpolator/grid mismatch");
    assert_eq!(acc.cells(), grid.cells(), "accumulator/grid mismatch");
    let n = species.len();
    if n == 0 {
        return PushStats::default();
    }
    if space.accounting() {
        // charge before pushing: the pre-push cell array is the order the
        // kernel visits particles in (i.e. after any applied sort), which
        // is what the coalescing/cache/atomic model needs
        space.charge(&pk::gpu::Access::Push { cells: &species.cell, grid_cells: grid.cells() });
    }
    let params = PushParams::new(grid, species.q, species.m);
    let policy = RangePolicy::new(n);
    let blocks = policy.static_blocks(space.concurrency());
    if blocks.len() <= 1 {
        let mut chunk = Chunk {
            q: species.q,
            worker: 0,
            cell: &mut species.cell,
            dx: &mut species.dx,
            dy: &mut species.dy,
            dz: &mut species.dz,
            ux: &mut species.ux,
            uy: &mut species.uy,
            uz: &mut species.uz,
            w: &species.w,
        };
        return push_chunk(strategy, grid, &mut chunk, interps, acc, params);
    }
    let starts: Vec<usize> = blocks.iter().map(|b| b.start).collect();
    let q = species.q;
    let ptrs = SpeciesPtrs::new(species);
    let ptrs = &ptrs;
    let crossings = space.reduce_blocks(&policy, &Sum::<u64>::new(), &|range| {
        // worker id = block index (reduce_blocks dispatches the same
        // static partition); a space that partitions differently still
        // gets a stable id per disjoint sub-range
        let worker = match starts.binary_search(&range.start) {
            Ok(b) => b,
            Err(i) => i.saturating_sub(1),
        };
        // SAFETY: reduce_blocks hands out disjoint sub-ranges that
        // partition `0..n` (the ExecSpace contract), so every particle
        // index has exactly one mutable owner.
        let mut chunk = unsafe { ptrs.chunk(range, q, worker) };
        push_chunk(strategy, grid, &mut chunk, interps, acc, params).crossings as u64
    });
    PushStats { pushed: n, crossings: crossings as usize }
}

/// A contiguous window into one species' particle arrays, pushed by a
/// single worker. `worker` routes this chunk's deposits to its scatter
/// replica in duplicated mode.
struct Chunk<'a> {
    q: f32,
    worker: usize,
    cell: &'a mut [u32],
    dx: &'a mut [f32],
    dy: &'a mut [f32],
    dz: &'a mut [f32],
    ux: &'a mut [f32],
    uy: &'a mut [f32],
    uz: &'a mut [f32],
    w: &'a [f32],
}

impl Chunk<'_> {
    fn len(&self) -> usize {
        self.cell.len()
    }
}

/// Raw pointers to one species' particle arrays, used to reconstruct
/// disjoint [`Chunk`]s inside a parallel dispatch.
struct SpeciesPtrs {
    cell: *mut u32,
    dx: *mut f32,
    dy: *mut f32,
    dz: *mut f32,
    ux: *mut f32,
    uy: *mut f32,
    uz: *mut f32,
    w: *const f32,
}

// SAFETY: only used to rebuild per-block chunks over disjoint ranges, so
// no element is ever aliased mutably (see `push_species_on`).
unsafe impl Sync for SpeciesPtrs {}

impl SpeciesPtrs {
    fn new(s: &mut Species) -> Self {
        Self {
            cell: s.cell.as_mut_ptr(),
            dx: s.dx.as_mut_ptr(),
            dy: s.dy.as_mut_ptr(),
            dz: s.dz.as_mut_ptr(),
            ux: s.ux.as_mut_ptr(),
            uy: s.uy.as_mut_ptr(),
            uz: s.uz.as_mut_ptr(),
            w: s.w.as_ptr(),
        }
    }

    /// Rebuild the chunk over `range`.
    ///
    /// # Safety
    /// `range` must be in bounds for the species' arrays and disjoint
    /// from every other chunk built from `self` that is alive.
    unsafe fn chunk(&self, range: Range<usize>, q: f32, worker: usize) -> Chunk<'_> {
        let (start, len) = (range.start, range.len());
        Chunk {
            q,
            worker,
            cell: std::slice::from_raw_parts_mut(self.cell.add(start), len),
            dx: std::slice::from_raw_parts_mut(self.dx.add(start), len),
            dy: std::slice::from_raw_parts_mut(self.dy.add(start), len),
            dz: std::slice::from_raw_parts_mut(self.dz.add(start), len),
            ux: std::slice::from_raw_parts_mut(self.ux.add(start), len),
            uy: std::slice::from_raw_parts_mut(self.uy.add(start), len),
            uz: std::slice::from_raw_parts_mut(self.uz.add(start), len),
            w: std::slice::from_raw_parts(self.w.add(start), len),
        }
    }
}

/// Dispatch one chunk to the selected strategy kernel.
fn push_chunk(
    strategy: Strategy,
    grid: &Grid,
    chunk: &mut Chunk<'_>,
    interps: &[Interpolator],
    acc: &Accumulator,
    params: PushParams,
) -> PushStats {
    match strategy {
        Strategy::Auto => push_auto(grid, chunk, interps, acc, params),
        Strategy::Guided => push_guided(grid, chunk, interps, acc, params),
        Strategy::Manual => push_manual(grid, chunk, interps, acc, params),
        Strategy::AdHoc => push_adhoc(grid, chunk, interps, acc, params),
    }
}

/// Scalar momentum update (Boris rotation with half E kicks).
/// Returns the new momentum.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn boris(
    h: f32,
    ux: f32,
    uy: f32,
    uz: f32,
    ex: f32,
    ey: f32,
    ez: f32,
    bx: f32,
    by: f32,
    bz: f32,
) -> (f32, f32, f32) {
    // half electric kick
    let ux = ux + h * ex;
    let uy = uy + h * ey;
    let uz = uz + h * ez;
    // rotation
    let gi = 1.0 / (1.0 + ux * ux + uy * uy + uz * uz).sqrt();
    let tx = h * bx * gi;
    let ty = h * by * gi;
    let tz = h * bz * gi;
    let t2 = tx * tx + ty * ty + tz * tz;
    let s = 2.0 / (1.0 + t2);
    let vx = ux + (uy * tz - uz * ty);
    let vy = uy + (uz * tx - ux * tz);
    let vz = uz + (ux * ty - uy * tx);
    let ux = ux + s * (vy * tz - vz * ty);
    let uy = uy + s * (vz * tx - vx * tz);
    let uz = uz + s * (vx * ty - vy * tx);
    // second half electric kick
    (ux + h * ex, uy + h * ey, uz + h * ez)
}

/// The scalar mover: advance offsets by `(mx, my, mz)`, splitting the
/// trajectory at cell boundaries and depositing each within-cell segment.
/// Updates the particle's cell and offsets; returns boundary crossings.
#[allow(clippy::too_many_arguments)]
#[inline]
fn move_and_deposit(
    grid: &Grid,
    acc: &Accumulator,
    worker: usize,
    qw: f32,
    cell: &mut u32,
    x: &mut f32,
    y: &mut f32,
    z: &mut f32,
    mut mx: f32,
    mut my: f32,
    mut mz: f32,
) -> usize {
    let mut crossings = 0usize;
    // at most one crossing per axis per step (CFL guarantees |m| ≤ 2)
    for _ in 0..4 {
        let tx = *x + mx;
        let ty = *y + my;
        let tz = *z + mz;
        // fraction of the remaining move until the first boundary hit
        let mut alpha = 1.0f32;
        let mut axis = usize::MAX;
        let candidates = [(tx, mx, *x), (ty, my, *y), (tz, mz, *z)];
        for (a, &(target, m, start)) in candidates.iter().enumerate() {
            if !(-1.0..=1.0).contains(&target) {
                let bound = if m > 0.0 { 1.0 } else { -1.0 };
                let f = (bound - start) / m;
                if f < alpha {
                    alpha = f;
                    axis = a;
                }
            }
        }
        if axis == usize::MAX {
            // no crossing: deposit the final segment and finish
            acc.deposit_segment(worker, *cell as usize, *x, *y, *z, tx, ty, tz, qw);
            *x = tx.clamp(-1.0, 1.0);
            *y = ty.clamp(-1.0, 1.0);
            *z = tz.clamp(-1.0, 1.0);
            return crossings;
        }
        // deposit up to the boundary; clamp the non-crossed coordinates,
        // which f32 rounding can push a few ulp past the face when two
        // axes cross at nearly equal fractions
        let bx = (*x + alpha * mx).clamp(-1.0, 1.0);
        let by = (*y + alpha * my).clamp(-1.0, 1.0);
        let bz = (*z + alpha * mz).clamp(-1.0, 1.0);
        acc.deposit_segment(worker, *cell as usize, *x, *y, *z, bx, by, bz, qw);
        // cross into the neighbor: flip the crossed axis's offset
        let (dxn, dyn_, dzn): (isize, isize, isize) = match axis {
            0 => (if mx > 0.0 { 1 } else { -1 }, 0, 0),
            1 => (0, if my > 0.0 { 1 } else { -1 }, 0),
            _ => (0, 0, if mz > 0.0 { 1 } else { -1 }),
        };
        *cell = grid.neighbor(*cell as usize, (dxn, dyn_, dzn)) as u32;
        *x = if axis == 0 { -bx.signum() } else { bx };
        *y = if axis == 1 { -by.signum() } else { by };
        *z = if axis == 2 { -bz.signum() } else { bz };
        mx *= 1.0 - alpha;
        my *= 1.0 - alpha;
        mz *= 1.0 - alpha;
        // zero out the crossed axis's handled part is implicit: the
        // remaining move continues from the flipped boundary position
        crossings += 1;
    }
    crossings
}

fn push_auto(
    grid: &Grid,
    s: &mut Chunk<'_>,
    interps: &[Interpolator],
    acc: &Accumulator,
    p: PushParams,
) -> PushStats {
    let mut stats = PushStats { pushed: s.len(), crossings: 0 };
    let h = p.qdt_2m;
    for i in 0..s.len() {
        let ip = &interps[s.cell[i] as usize];
        let (x, y, z) = (s.dx[i], s.dy[i], s.dz[i]);
        let (ex, ey, ez) = ip.e_at(x, y, z);
        let (bx, by, bz) = ip.b_at(x, y, z);
        let (ux, uy, uz) = boris(h, s.ux[i], s.uy[i], s.uz[i], ex, ey, ez, bx, by, bz);
        s.ux[i] = ux;
        s.uy[i] = uy;
        s.uz[i] = uz;
        let gi = 1.0 / (1.0 + ux * ux + uy * uy + uz * uz).sqrt();
        let qw = s.q * s.w[i];
        stats.crossings += move_and_deposit(
            grid,
            acc,
            s.worker,
            qw,
            &mut s.cell[i],
            &mut s.dx[i],
            &mut s.dy[i],
            &mut s.dz[i],
            ux * gi * p.cdt_dx2,
            uy * gi * p.cdt_dy2,
            uz * gi * p.cdt_dz2,
        );
    }
    stats
}

/// Scratch block size for the guided strategy's split passes.
const GUIDED_BLOCK: usize = 256;

fn push_guided(
    grid: &Grid,
    s: &mut Chunk<'_>,
    interps: &[Interpolator],
    acc: &Accumulator,
    p: PushParams,
) -> PushStats {
    let mut stats = PushStats { pushed: s.len(), crossings: 0 };
    let h = p.qdt_2m;
    let n = s.len();
    let mut fex = [0.0f32; GUIDED_BLOCK];
    let mut fey = [0.0f32; GUIDED_BLOCK];
    let mut fez = [0.0f32; GUIDED_BLOCK];
    let mut fbx = [0.0f32; GUIDED_BLOCK];
    let mut fby = [0.0f32; GUIDED_BLOCK];
    let mut fbz = [0.0f32; GUIDED_BLOCK];
    let mut base = 0;
    while base < n {
        let len = GUIDED_BLOCK.min(n - base);
        // pass 1: gather + field evaluation (the hard-to-vectorize part,
        // isolated in its own loop)
        for k in 0..len {
            let i = base + k;
            let ip = &interps[s.cell[i] as usize];
            let (ex, ey, ez) = ip.e_at(s.dx[i], s.dy[i], s.dz[i]);
            let (bx, by, bz) = ip.b_at(s.dx[i], s.dy[i], s.dz[i]);
            fex[k] = ex;
            fey[k] = ey;
            fez[k] = ez;
            fbx[k] = bx;
            fby[k] = by;
            fbz[k] = bz;
        }
        // pass 2: Boris arithmetic over dense SoA scratch — a clean
        // fixed-shape loop the vectorizer handles
        for k in 0..len {
            let i = base + k;
            let (ux, uy, uz) = boris(
                h, s.ux[i], s.uy[i], s.uz[i], fex[k], fey[k], fez[k], fbx[k], fby[k], fbz[k],
            );
            s.ux[i] = ux;
            s.uy[i] = uy;
            s.uz[i] = uz;
        }
        // pass 3: scalar mover
        for k in 0..len {
            let i = base + k;
            let (ux, uy, uz) = (s.ux[i], s.uy[i], s.uz[i]);
            let gi = 1.0 / (1.0 + ux * ux + uy * uy + uz * uz).sqrt();
            let qw = s.q * s.w[i];
            stats.crossings += move_and_deposit(
                grid,
                acc,
                s.worker,
                qw,
                &mut s.cell[i],
                &mut s.dx[i],
                &mut s.dy[i],
                &mut s.dz[i],
                ux * gi * p.cdt_dx2,
                uy * gi * p.cdt_dy2,
                uz * gi * p.cdt_dz2,
            );
        }
        base += len;
    }
    stats
}

fn push_manual(
    grid: &Grid,
    s: &mut Chunk<'_>,
    interps: &[Interpolator],
    acc: &Accumulator,
    p: PushParams,
) -> PushStats {
    let mut stats = PushStats { pushed: s.len(), crossings: 0 };
    let n = s.len();
    let main = n - n % 4;
    let h = SimdF32::<4>::splat(p.qdt_2m);
    let one = SimdF32::<4>::splat(1.0);
    let two = SimdF32::<4>::splat(2.0);
    let mut i = 0;
    while i < main {
        // gather: evaluate fields per lane (cell-indexed interpolators)
        let mut ex = [0.0f32; 4];
        let mut ey = [0.0f32; 4];
        let mut ez = [0.0f32; 4];
        let mut bx = [0.0f32; 4];
        let mut by = [0.0f32; 4];
        let mut bz = [0.0f32; 4];
        for l in 0..4 {
            let ip = &interps[s.cell[i + l] as usize];
            let (x, y, z) = (s.dx[i + l], s.dy[i + l], s.dz[i + l]);
            let e = ip.e_at(x, y, z);
            let b = ip.b_at(x, y, z);
            ex[l] = e.0;
            ey[l] = e.1;
            ez[l] = e.2;
            bx[l] = b.0;
            by[l] = b.1;
            bz[l] = b.2;
        }
        let (ex, ey, ez) = (SimdF32(ex), SimdF32(ey), SimdF32(ez));
        let (bx, by, bz) = (SimdF32(bx), SimdF32(by), SimdF32(bz));
        // vector Boris over 4 particles
        let mut ux = SimdF32::<4>::load(s.ux, i) + h * ex;
        let mut uy = SimdF32::<4>::load(s.uy, i) + h * ey;
        let mut uz = SimdF32::<4>::load(s.uz, i) + h * ez;
        let gi = one / (one + ux * ux + uy * uy + uz * uz).sqrt();
        let tx = h * bx * gi;
        let ty = h * by * gi;
        let tz = h * bz * gi;
        // sum t² first (same association as scalar `boris`) so every
        // strategy walks one IEEE op tree and stays bit-identical
        let t2 = tx * tx + ty * ty + tz * tz;
        let sfac = two / (one + t2);
        let vx = ux + (uy * tz - uz * ty);
        let vy = uy + (uz * tx - ux * tz);
        let vz = uz + (ux * ty - uy * tx);
        ux += sfac * (vy * tz - vz * ty);
        uy += sfac * (vz * tx - vx * tz);
        uz += sfac * (vx * ty - vy * tx);
        ux += h * ex;
        uy += h * ey;
        uz += h * ez;
        ux.store(s.ux, i);
        uy.store(s.uy, i);
        uz.store(s.uz, i);
        // scalar mover per lane
        for l in 0..4 {
            let k = i + l;
            let (ux, uy, uz) = (s.ux[k], s.uy[k], s.uz[k]);
            let gi = 1.0 / (1.0 + ux * ux + uy * uy + uz * uz).sqrt();
            let qw = s.q * s.w[k];
            stats.crossings += move_and_deposit(
                grid,
                acc,
                s.worker,
                qw,
                &mut s.cell[k],
                &mut s.dx[k],
                &mut s.dy[k],
                &mut s.dz[k],
                ux * gi * p.cdt_dx2,
                uy * gi * p.cdt_dy2,
                uz * gi * p.cdt_dz2,
            );
        }
        i += 4;
    }
    // scalar tail
    stats.crossings += push_tail(grid, s, interps, acc, p, main);
    stats
}

fn push_adhoc(
    grid: &Grid,
    s: &mut Chunk<'_>,
    interps: &[Interpolator],
    acc: &Accumulator,
    p: PushParams,
) -> PushStats {
    let mut stats = PushStats { pushed: s.len(), crossings: 0 };
    let n = s.len();
    let main = n - n % 4;
    let h = V4F32::splat(p.qdt_2m);
    let one = V4F32::splat(1.0);
    let two = V4F32::splat(2.0);
    let mut i = 0;
    while i < main {
        let mut ex = [0.0f32; 4];
        let mut ey = [0.0f32; 4];
        let mut ez = [0.0f32; 4];
        let mut bx = [0.0f32; 4];
        let mut by = [0.0f32; 4];
        let mut bz = [0.0f32; 4];
        for l in 0..4 {
            let ip = &interps[s.cell[i + l] as usize];
            let (x, y, z) = (s.dx[i + l], s.dy[i + l], s.dz[i + l]);
            let e = ip.e_at(x, y, z);
            let b = ip.b_at(x, y, z);
            ex[l] = e.0;
            ey[l] = e.1;
            ez[l] = e.2;
            bx[l] = b.0;
            by[l] = b.1;
            bz[l] = b.2;
        }
        let (ex, ey, ez) = (V4F32::from_array(ex), V4F32::from_array(ey), V4F32::from_array(ez));
        let (bx, by, bz) = (V4F32::from_array(bx), V4F32::from_array(by), V4F32::from_array(bz));
        let mut ux = V4F32::load(s.ux, i).add(h.mul(ex));
        let mut uy = V4F32::load(s.uy, i).add(h.mul(ey));
        let mut uz = V4F32::load(s.uz, i).add(h.mul(ez));
        let norm = one.add(ux.mul(ux)).add(uy.mul(uy)).add(uz.mul(uz));
        let gi = one.div(norm.sqrt());
        let tx = h.mul(bx).mul(gi);
        let ty = h.mul(by).mul(gi);
        let tz = h.mul(bz).mul(gi);
        let t2 = tx.mul(tx).add(ty.mul(ty)).add(tz.mul(tz));
        let sfac = two.div(one.add(t2));
        let vx = ux.add(uy.mul(tz).sub(uz.mul(ty)));
        let vy = uy.add(uz.mul(tx).sub(ux.mul(tz)));
        let vz = uz.add(ux.mul(ty).sub(uy.mul(tx)));
        ux = ux.add(sfac.mul(vy.mul(tz).sub(vz.mul(ty))));
        uy = uy.add(sfac.mul(vz.mul(tx).sub(vx.mul(tz))));
        uz = uz.add(sfac.mul(vx.mul(ty).sub(vy.mul(tx))));
        ux = ux.add(h.mul(ex));
        uy = uy.add(h.mul(ey));
        uz = uz.add(h.mul(ez));
        ux.store(s.ux, i);
        uy.store(s.uy, i);
        uz.store(s.uz, i);
        for l in 0..4 {
            let k = i + l;
            let (ux, uy, uz) = (s.ux[k], s.uy[k], s.uz[k]);
            let gi = 1.0 / (1.0 + ux * ux + uy * uy + uz * uz).sqrt();
            let qw = s.q * s.w[k];
            stats.crossings += move_and_deposit(
                grid,
                acc,
                s.worker,
                qw,
                &mut s.cell[k],
                &mut s.dx[k],
                &mut s.dy[k],
                &mut s.dz[k],
                ux * gi * p.cdt_dx2,
                uy * gi * p.cdt_dy2,
                uz * gi * p.cdt_dz2,
            );
        }
        i += 4;
    }
    stats.crossings += push_tail(grid, s, interps, acc, p, main);
    stats
}

/// Scalar tail shared by the vector strategies.
fn push_tail(
    grid: &Grid,
    s: &mut Chunk<'_>,
    interps: &[Interpolator],
    acc: &Accumulator,
    p: PushParams,
    from: usize,
) -> usize {
    let h = p.qdt_2m;
    let mut crossings = 0;
    for i in from..s.len() {
        let ip = &interps[s.cell[i] as usize];
        let (x, y, z) = (s.dx[i], s.dy[i], s.dz[i]);
        let (ex, ey, ez) = ip.e_at(x, y, z);
        let (bx, by, bz) = ip.b_at(x, y, z);
        let (ux, uy, uz) = boris(h, s.ux[i], s.uy[i], s.uz[i], ex, ey, ez, bx, by, bz);
        s.ux[i] = ux;
        s.uy[i] = uy;
        s.uz[i] = uz;
        let gi = 1.0 / (1.0 + ux * ux + uy * uy + uz * uz).sqrt();
        let qw = s.q * s.w[i];
        crossings += move_and_deposit(
            grid,
            acc,
            s.worker,
            qw,
            &mut s.cell[i],
            &mut s.dx[i],
            &mut s.dy[i],
            &mut s.dz[i],
            ux * gi * p.cdt_dx2,
            uy * gi * p.cdt_dy2,
            uz * gi * p.cdt_dz2,
        );
    }
    crossings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldArray;
    use crate::interp::load_interpolators;
    use pk::atomic::ScatterMode;

    fn setup(grid: &Grid) -> (FieldArray, Accumulator) {
        (
            FieldArray::new(grid.clone()),
            Accumulator::new(grid.cells(), 1, ScatterMode::Atomic),
        )
    }

    #[test]
    fn free_particle_moves_ballistically() {
        let grid = Grid::new(8, 8, 8);
        let (f, acc) = setup(&grid);
        let interps = load_interpolators(&f);
        let mut s = Species::new("e", -1.0, 1.0);
        let u = 0.5f32;
        s.push_particle(0.0, 0.0, 0.0, 0, u, 0.0, 0.0, 1.0);
        let stats = push_species(Strategy::Auto, &grid, &mut s, &interps, &acc);
        assert_eq!(stats.pushed, 1);
        // no fields: momentum unchanged
        assert_eq!(s.ux[0], u);
        // moved by v·dt in offset units (×2)
        let gi = 1.0 / (1.0 + u * u).sqrt();
        let expect = 2.0 * u * gi * grid.dt;
        assert!((s.dx[0] - expect).abs() < 1e-6);
    }

    #[test]
    fn uniform_e_accelerates_correctly() {
        let grid = Grid::new(4, 4, 4);
        let (mut f, acc) = setup(&grid);
        let e0 = 0.01f32;
        f.ex.fill(e0);
        let interps = load_interpolators(&f);
        let mut s = Species::new("e", -1.0, 1.0);
        s.push_particle(0.0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 1.0);
        push_species(Strategy::Auto, &grid, &mut s, &interps, &acc);
        // du = q E dt / m (non-relativistic limit)
        let expect = -e0 * grid.dt;
        assert!((s.ux[0] - expect).abs() < 1e-7, "{} vs {expect}", s.ux[0]);
    }

    #[test]
    fn boris_rotation_preserves_momentum_magnitude() {
        let grid = Grid::new(4, 4, 4);
        let (mut f, acc) = setup(&grid);
        f.bz.fill(0.3);
        let interps = load_interpolators(&f);
        let mut s = Species::new("e", -1.0, 1.0);
        s.push_particle(0.0, 0.0, 0.0, 0, 0.2, 0.1, 0.05, 1.0);
        let u0 = (0.2f64.powi(2) + 0.1f64.powi(2) + 0.05f64.powi(2)).sqrt();
        for _ in 0..100 {
            acc.reset();
            push_species(Strategy::Auto, &grid, &mut s, &interps, &acc);
        }
        let u1 = ((s.ux[0] as f64).powi(2) + (s.uy[0] as f64).powi(2)
            + (s.uz[0] as f64).powi(2))
        .sqrt();
        assert!(
            ((u1 - u0) / u0).abs() < 1e-4,
            "pure B rotation must conserve |u|: {u0} vs {u1}"
        );
    }

    #[test]
    fn gyro_orbit_frequency_matches_theory() {
        // ω_c = qB/(γm): check the rotation angle per step
        let grid = Grid::new(4, 4, 4);
        let (mut f, acc) = setup(&grid);
        let b = 0.2f32;
        f.bz.fill(b);
        let interps = load_interpolators(&f);
        let mut s = Species::new("q+", 1.0, 1.0);
        let u = 0.1f32;
        s.push_particle(0.0, 0.0, 0.0, 0, u, 0.0, 0.0, 1.0);
        push_species(Strategy::Auto, &grid, &mut s, &interps, &acc);
        let angle = (s.uy[0] / s.ux[0]).atan();
        let gamma = (1.0 + u * u).sqrt();
        // Boris angle: 2·atan(h·B/γ) with h = q dt/2m
        let expect = -2.0 * ((grid.dt / 2.0) * b / gamma).atan();
        assert!(
            (angle - expect).abs() < 1e-5,
            "gyro angle {angle} vs theory {expect}"
        );
    }

    #[test]
    fn all_strategies_produce_matching_trajectories() {
        let grid = Grid::new(6, 6, 6);
        let mut f = FieldArray::new(grid.clone());
        // non-trivial field mix
        for v in 0..grid.cells() {
            f.ex[v] = 0.003 * (v as f32 * 0.1).sin();
            f.ey[v] = 0.002 * (v as f32 * 0.2).cos();
            f.bz[v] = 0.1 + 0.01 * (v as f32 * 0.05).sin();
        }
        let interps = load_interpolators(&f);
        let make = || {
            let mut s = Species::new("e", -1.0, 1.0);
            s.load_uniform(&grid, 1001, 0.2, (0.05, 0.0, 0.0), 1.0, 77);
            s
        };
        let reference = {
            let mut s = make();
            let acc = Accumulator::new(grid.cells(), 1, ScatterMode::Atomic);
            for _ in 0..3 {
                acc.reset();
                push_species(Strategy::Auto, &grid, &mut s, &interps, &acc);
            }
            s
        };
        for strat in [Strategy::Guided, Strategy::Manual, Strategy::AdHoc] {
            let mut s = make();
            let acc = Accumulator::new(grid.cells(), 1, ScatterMode::Atomic);
            for _ in 0..3 {
                acc.reset();
                push_species(strat, &grid, &mut s, &interps, &acc);
            }
            let mut max_du = 0.0f32;
            for i in 0..s.len() {
                max_du = max_du
                    .max((s.ux[i] - reference.ux[i]).abs())
                    .max((s.uy[i] - reference.uy[i]).abs())
                    .max((s.uz[i] - reference.uz[i]).abs());
                assert_eq!(s.cell[i], reference.cell[i], "{strat}: cell diverged at {i}");
            }
            assert!(max_du < 2e-5, "{strat}: momentum divergence {max_du}");
        }
    }

    #[test]
    fn all_strategies_are_bitwise_identical() {
        // Every strategy walks the same IEEE op tree per particle (the
        // vector kernels use exact lane ops and the scalar association),
        // so trajectories are bit-equal — the property the tiled path
        // and heterogeneous per-rank configs rely on.
        let grid = Grid::new(6, 6, 6);
        let mut f = FieldArray::new(grid.clone());
        for v in 0..grid.cells() {
            f.ex[v] = 0.003 * (v as f32 * 0.1).sin();
            f.ey[v] = 0.002 * (v as f32 * 0.2).cos();
            f.bz[v] = 0.1 + 0.01 * (v as f32 * 0.05).sin();
        }
        let interps = load_interpolators(&f);
        let make = || {
            let mut s = Species::new("e", -1.0, 1.0);
            s.load_uniform(&grid, 1001, 0.2, (0.05, 0.0, 0.0), 1.0, 77);
            s
        };
        let reference = {
            let mut s = make();
            let acc = Accumulator::new(grid.cells(), 1, ScatterMode::Atomic);
            for _ in 0..3 {
                acc.reset();
                push_species(Strategy::Auto, &grid, &mut s, &interps, &acc);
            }
            s
        };
        for strat in [Strategy::Guided, Strategy::Manual, Strategy::AdHoc] {
            let mut s = make();
            let acc = Accumulator::new(grid.cells(), 1, ScatterMode::Atomic);
            for _ in 0..3 {
                acc.reset();
                push_species(strat, &grid, &mut s, &interps, &acc);
            }
            assert_eq!(s.cell, reference.cell, "{strat}");
            for i in 0..s.len() {
                assert_eq!(s.dx[i].to_bits(), reference.dx[i].to_bits(), "{strat} dx[{i}]");
                assert_eq!(s.dy[i].to_bits(), reference.dy[i].to_bits(), "{strat} dy[{i}]");
                assert_eq!(s.dz[i].to_bits(), reference.dz[i].to_bits(), "{strat} dz[{i}]");
                assert_eq!(s.ux[i].to_bits(), reference.ux[i].to_bits(), "{strat} ux[{i}]");
                assert_eq!(s.uy[i].to_bits(), reference.uy[i].to_bits(), "{strat} uy[{i}]");
                assert_eq!(s.uz[i].to_bits(), reference.uz[i].to_bits(), "{strat} uz[{i}]");
            }
        }
    }

    #[test]
    fn mover_handles_boundary_crossing_with_periodic_wrap() {
        let grid = Grid::new(4, 4, 4);
        let (f, acc) = setup(&grid);
        let interps = load_interpolators(&f);
        let mut s = Species::new("e", -1.0, 1.0);
        // fast particle near the +x face of the last cell in x
        let start = grid.voxel(3, 0, 0);
        s.push_particle(0.95, 0.0, 0.0, start as u32, 2.0, 0.0, 0.0, 1.0);
        let stats = push_species(Strategy::Auto, &grid, &mut s, &interps, &acc);
        assert_eq!(stats.crossings, 1);
        assert_eq!(s.cell[0], grid.voxel(0, 0, 0) as u32, "periodic wrap in x");
        assert!(s.dx[0] >= -1.0 && s.dx[0] <= 1.0);
        s.validate(&grid).unwrap();
    }

    #[test]
    fn diagonal_crossing_splits_segments() {
        let grid = Grid::new(4, 4, 4);
        let (f, acc) = setup(&grid);
        let interps = load_interpolators(&f);
        let mut s = Species::new("e", -1.0, 1.0);
        s.push_particle(0.99, 0.99, 0.0, 0, 3.0, 3.0, 0.0, 1.0);
        let stats = push_species(Strategy::Auto, &grid, &mut s, &interps, &acc);
        assert_eq!(stats.crossings, 2, "crossed x and y faces");
        assert_eq!(s.cell[0], grid.voxel(1, 1, 0) as u32);
        s.validate(&grid).unwrap();
    }

    #[test]
    fn deposit_total_matches_charge_times_displacement() {
        // total accumulated jx (all cells) = Σ qw·Δξ regardless of crossings
        let grid = Grid::new(4, 4, 4);
        let (mut f, mut acc) = setup(&grid);
        let interps = load_interpolators(&f);
        let mut s = Species::new("e", -1.0, 1.0);
        s.push_particle(0.9, 0.1, -0.3, 21, 1.5, 0.0, 0.0, 2.0);
        let ux = s.ux[0];
        let gi = 1.0 / (1.0f32 + ux * ux).sqrt();
        let frac = ux * gi * grid.dt; // fraction of a cell moved
        push_species(Strategy::Auto, &grid, &mut s, &interps, &acc);
        acc.unload(&mut f);
        let total_jx: f64 = f.jx.iter().map(|&x| x as f64).sum();
        let qw = -2.0f64;
        let expect = qw * frac as f64 / grid.dt as f64;
        assert!(
            (total_jx - expect).abs() < 1e-5,
            "total jx {total_jx} vs {expect}"
        );
    }

    #[test]
    fn parallel_push_matches_serial_push() {
        use pk::Threads;
        let grid = Grid::new(6, 6, 6);
        let mut f = FieldArray::new(grid.clone());
        for v in 0..grid.cells() {
            f.ex[v] = 0.004 * (v as f32 * 0.3).sin();
            f.by[v] = 0.05 + 0.02 * (v as f32 * 0.11).cos();
            f.bz[v] = 0.1;
        }
        let interps = load_interpolators(&f);
        let make = || {
            let mut s = Species::new("e", -1.0, 1.0);
            s.load_uniform(&grid, 777, 0.3, (0.1, -0.05, 0.0), 1.0, 5);
            s
        };
        let threads = Threads::new(4);
        for strat in [Strategy::Auto, Strategy::Guided, Strategy::Manual, Strategy::AdHoc] {
            let mut serial_s = make();
            let mut serial_acc = Accumulator::new(grid.cells(), 1, ScatterMode::Atomic);
            let serial_stats =
                push_species(strat, &grid, &mut serial_s, &interps, &serial_acc);
            let mut par_s = make();
            let mut par_acc =
                Accumulator::new(grid.cells(), threads.concurrency(), ScatterMode::Duplicated);
            let par_stats =
                push_species_on(&threads, strat, &grid, &mut par_s, &interps, &par_acc);
            // particles are independent: trajectories must be bit-identical
            assert_eq!(par_stats, serial_stats, "{strat}");
            assert_eq!(par_s.cell, serial_s.cell, "{strat}");
            assert_eq!(par_s.dx, serial_s.dx, "{strat}");
            assert_eq!(par_s.ux, serial_s.ux, "{strat}");
            // deposits differ only in f64 summation order
            let mut fs = FieldArray::new(grid.clone());
            let mut fp = FieldArray::new(grid.clone());
            serial_acc.unload(&mut fs);
            par_acc.unload(&mut fp);
            for (a, b) in fs.jx.iter().zip(&fp.jx).chain(fs.jy.iter().zip(&fp.jy)) {
                assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0), "{strat}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn parallel_push_with_empty_species_is_noop() {
        use pk::Threads;
        let grid = Grid::new(4, 4, 4);
        let (f, acc) = setup(&grid);
        let interps = load_interpolators(&f);
        let mut s = Species::new("e", -1.0, 1.0);
        let stats =
            push_species_on(&Threads::new(4), Strategy::Auto, &grid, &mut s, &interps, &acc);
        assert_eq!(stats, PushStats::default());
    }

    #[test]
    fn continuity_through_the_full_push_with_crossings() {
        use crate::accumulate::{deposit_rho_node, div_j_node};
        let grid = Grid::new(5, 5, 5);
        let (mut f, mut acc) = setup(&grid);
        let interps = load_interpolators(&f);
        let mut s = Species::new("e", -1.0, 1.0);
        s.load_uniform(&grid, 300, 0.4, (0.1, -0.2, 0.3), 1.0, 13);
        let mut rho0 = vec![0.0f64; grid.cells()];
        for p in 0..s.len() {
            deposit_rho_node(&grid, &mut rho0, s.cell[p] as usize, s.dx[p], s.dy[p], s.dz[p], s.q * s.w[p]);
        }
        push_species(Strategy::Auto, &grid, &mut s, &interps, &acc);
        let mut rho1 = vec![0.0f64; grid.cells()];
        for p in 0..s.len() {
            deposit_rho_node(&grid, &mut rho1, s.cell[p] as usize, s.dx[p], s.dy[p], s.dz[p], s.q * s.w[p]);
        }
        acc.unload(&mut f);
        for v in 0..grid.cells() {
            let drho_dt = (rho1[v] - rho0[v]) / grid.dt as f64;
            let div = div_j_node(&f, v);
            assert!(
                (drho_dt + div).abs() < 2e-4,
                "continuity violated at {v}: {} vs {}",
                drho_dt,
                -div
            );
        }
    }
}
