//! Cache-tiled particle stepping with compressed SoA tiles (DESIGN §14).
//!
//! [`TileEngine`] partitions each species' cell-sorted SoA into
//! contiguous cell-range tiles. A tiled step streams the tiles in fixed
//! ascending order through sort-maintenance → push → deposit with only a
//! bounded pool of tiles decompressed at once; everything else lives as
//! a losslessly compressed [`ptile`] blob in RAM or spilled to disk
//! through `ckpt`'s atomic-write/CRC container. That caps the resident
//! particle working set at `max_hot` LLC-sized tiles, so populations far
//! beyond the uncompressed RAM budget still step.
//!
//! ## Determinism argument
//!
//! The tiled path is bit-identical to the untiled path for any tile
//! size, pool size, worker count, and strategy because every ingredient
//! is order-invariant:
//!
//! * per-particle push arithmetic is a pure function of the particle
//!   and its cell's interpolator — all four strategies walk the same
//!   IEEE op tree (see `push.rs`), so storage order, partitioning, and
//!   tile boundaries cannot change a trajectory;
//! * current deposits accumulate in fixed-point `i64` slots (wrapping
//!   integer adds commute), so deposit order across tiles and workers
//!   is invisible; the unload's f64 summation runs in fixed slot order;
//! * cross-tile migration is deterministic: tiles are visited in fixed
//!   ascending order, emigrants drain in ascending index order into the
//!   destination tile's pending buffer, and every visit re-sorts the
//!   tile by `(cell, id)` — a pure function of the particle multiset.
//!
//! A particle that crosses into another tile mid-step has already been
//! pushed this step, so it parks in the destination's *pending* buffer
//! and joins that tile at its next visit — each particle is pushed
//! exactly once per step, exactly like the untiled traversal.

use crate::accumulate::Accumulator;
use crate::grid::Grid;
use crate::interp::Interpolator;
use crate::push::{push_species_on, PushStats};
use crate::species::{ParticleRecord, Species};
use pk::ExecSpace;
use ptile::{raw_size, TileData};
use std::path::PathBuf;
use vsimd::Strategy;

/// How a simulation is tiled: tile geometry, codec, pool bound, and the
/// optional spill directory. `tile_cells` is normally sized so one
/// tile's cells + particles fit the platform LLC (see
/// `memsim::push::llc_tile_cells`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TilePolicy {
    /// Grid cells per tile (the last tile may be short).
    pub tile_cells: usize,
    /// Compress released tiles (packed [`ptile`] encoding) instead of
    /// storing raw blobs.
    pub compress: bool,
    /// Decompressed tiles resident at once (the pool bound, ≥ 1).
    pub max_hot: usize,
    /// When set, released tiles are written here (atomic + CRC via
    /// `ckpt`) instead of kept as RAM blobs — the out-of-core mode.
    pub spill_dir: Option<PathBuf>,
}

impl TilePolicy {
    /// Policy with the given tile size, compression on, a 2-tile pool,
    /// and no spill.
    pub fn new(tile_cells: usize) -> Self {
        Self { tile_cells: tile_cells.max(1), compress: true, max_hot: 2, spill_dir: None }
    }
}

impl Default for TilePolicy {
    fn default() -> Self {
        Self::new(512)
    }
}

/// Lifetime counters for residency / codec behaviour, exposed to the
/// bench and tests (telemetry hists carry the distributions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileStats {
    /// Tile visits that needed particle data.
    pub fetches: u64,
    /// Visits served from the hot pool (no codec work).
    pub hot_hits: u64,
    /// Hot tiles encoded back out to make room.
    pub evictions: u64,
    /// Blob decodes (RAM or disk).
    pub decodes: u64,
    /// Blob encodes.
    pub encodes: u64,
    /// Spill-file writes / reads.
    pub spill_writes: u64,
    /// Spill-file reads.
    pub spill_reads: u64,
    /// Total encoded bytes produced (compression-ratio numerator).
    pub encoded_bytes: u64,
    /// Total raw bytes those encodes covered (ratio denominator).
    pub raw_bytes_encoded: u64,
    /// Peak uncompressed bytes resident in the hot pool at once — the
    /// in-RAM capacity budget actually used.
    pub peak_hot_raw_bytes: u64,
    /// Bytes currently on disk in spill files.
    pub spilled_bytes: u64,
}

/// Where one tile's particles currently live.
enum TileState {
    /// No particles stored (count 0).
    Empty,
    /// Decompressed in pool slot `.0`.
    Hot(usize),
    /// Encoded blob in RAM.
    Blob(Vec<u8>),
    /// Encoded blob on disk (`spill_path`), `bytes` long on disk.
    Spilled { bytes: u64 },
}

struct Tile {
    /// Particles stored in this tile (excludes `pending`).
    count: usize,
    state: TileState,
    /// Migrants that crossed into this tile mid-step; appended (and
    /// first pushed) at the tile's next visit.
    pending: Vec<(u64, ParticleRecord)>,
}

struct SpeciesTiles {
    q: f32,
    m: f32,
    tiles: Vec<Tile>,
    /// Per-step double buffer: `pending` swaps in here at the start of
    /// the species traversal so this step's crossings and last step's
    /// arrivals never mix.
    arrivals: Vec<Vec<(u64, ParticleRecord)>>,
}

/// One pool slot: a reusable decompressed tile.
struct Slot {
    body: Species,
    ids: Vec<u64>,
    owner: Option<(usize, usize)>,
    /// LRU stamp (bumped on every touch; deterministic — the traversal
    /// order is fixed, so so is the eviction sequence).
    stamp: u64,
}

/// The tiled stepping engine owned by `Simulation` while tiling is
/// enabled. See the module docs for the determinism argument.
pub struct TileEngine {
    policy: TilePolicy,
    cells: usize,
    tile_count: usize,
    per_species: Vec<SpeciesTiles>,
    slots: Vec<Slot>,
    clock: u64,
    stats: TileStats,
    // reusable scratch (no steady-state allocation)
    td: TileData,
    perm: Vec<usize>,
    done: Vec<bool>,
    drain_idx: Vec<usize>,
    drain_recs: Vec<ParticleRecord>,
    drain_ids: Vec<u64>,
}

/// Move the SoA arrays between the codec view and a pool slot without
/// copying (vector swaps).
fn swap_td_slot(td: &mut TileData, body: &mut Species, ids: &mut Vec<u64>) {
    std::mem::swap(&mut td.cell, &mut body.cell);
    std::mem::swap(&mut td.dx, &mut body.dx);
    std::mem::swap(&mut td.dy, &mut body.dy);
    std::mem::swap(&mut td.dz, &mut body.dz);
    std::mem::swap(&mut td.ux, &mut body.ux);
    std::mem::swap(&mut td.uy, &mut body.uy);
    std::mem::swap(&mut td.uz, &mut body.uz);
    std::mem::swap(&mut td.w, &mut body.w);
    std::mem::swap(&mut td.id, ids);
}

/// Re-establish the tile invariant: particles ordered by `(cell, id)`.
/// A pure function of the particle multiset, so tile contents are
/// independent of arrival interleaving.
fn sort_slot(body: &mut Species, ids: &mut [u64], perm: &mut Vec<usize>, done: &mut Vec<bool>) {
    perm.clear();
    perm.extend(0..ids.len());
    let cell = &body.cell;
    perm.sort_unstable_by_key(|&i| (cell[i], ids[i]));
    if perm.iter().enumerate().all(|(i, &p)| i == p) {
        return;
    }
    pk::sort::permute_in_place_with(perm, &mut body.cell, done);
    for arr in [
        &mut body.dx,
        &mut body.dy,
        &mut body.dz,
        &mut body.ux,
        &mut body.uy,
        &mut body.uz,
        &mut body.w,
    ] {
        pk::sort::permute_in_place_with(perm, arr, done);
    }
    pk::sort::permute_in_place_with(perm, ids, done);
    body.mark_unsorted();
}

/// Stable one-pass compaction of `ids` removing the (ascending)
/// `indices` — the id-array mirror of `Species::drain_sorted_indices`.
fn compact_ids(ids: &mut Vec<u64>, indices: &[usize]) {
    if indices.is_empty() {
        return;
    }
    let mut write = indices[0];
    let mut next = 0usize;
    for read in indices[0]..ids.len() {
        if next < indices.len() && indices[next] == read {
            next += 1;
            continue;
        }
        ids[write] = ids[read];
        write += 1;
    }
    ids.truncate(write);
}

impl TileEngine {
    /// Engine over a `cells`-cell grid with `n_species` empty species
    /// sets. Particles arrive via [`TileEngine::load_species`].
    pub fn new(policy: TilePolicy, cells: usize, n_species: usize) -> Self {
        assert!(policy.tile_cells >= 1, "tile_cells must be >= 1");
        let tile_count = cells.div_ceil(policy.tile_cells);
        // Pre-reserve the migrant queues: a tile's first in-migrant can
        // arrive arbitrarily late (slow thermal drift across a far
        // boundary), and a first-touch allocation then would break the
        // no-alloc steady state. ~1.3 KB/tile/species covers typical
        // per-step flux; heavier flux grows a queue once and keeps it.
        const MIGRANT_RESERVE: usize = 32;
        let per_species = (0..n_species)
            .map(|_| SpeciesTiles {
                q: 0.0,
                m: 1.0,
                tiles: (0..tile_count)
                    .map(|_| Tile {
                        count: 0,
                        state: TileState::Empty,
                        pending: Vec::with_capacity(MIGRANT_RESERVE),
                    })
                    .collect(),
                arrivals: (0..tile_count)
                    .map(|_| Vec::with_capacity(MIGRANT_RESERVE))
                    .collect(),
            })
            .collect();
        let slots = (0..policy.max_hot.max(1))
            .map(|_| Slot {
                body: Species::new("tile-slot", -1.0, 1.0),
                ids: Vec::new(),
                owner: None,
                stamp: 0,
            })
            .collect();
        Self {
            policy,
            cells,
            tile_count,
            per_species,
            slots,
            clock: 0,
            stats: TileStats::default(),
            td: TileData::default(),
            perm: Vec::new(),
            done: Vec::new(),
            drain_idx: Vec::new(),
            drain_recs: Vec::new(),
            drain_ids: Vec::new(),
        }
    }

    /// The policy the engine was built with.
    pub fn policy(&self) -> &TilePolicy {
        &self.policy
    }

    /// Number of cell-range tiles per species.
    pub fn tile_count(&self) -> usize {
        self.tile_count
    }

    /// Lifetime residency/codec counters.
    pub fn stats(&self) -> TileStats {
        self.stats
    }

    /// Total particles across all tiles and pending buffers.
    pub fn particle_count(&self) -> usize {
        self.per_species
            .iter()
            .map(|sp| {
                sp.tiles.iter().map(|t| t.count + t.pending.len()).sum::<usize>()
                    + sp.arrivals.iter().map(|a| a.len()).sum::<usize>()
            })
            .sum()
    }

    /// Capacities of every reusable buffer (pool slots, codec scratch,
    /// drain scratch, pending/arrival rings) in a fixed order — for
    /// no-alloc-after-warmup assertions.
    pub fn scratch_capacities(&self) -> Vec<usize> {
        let mut caps = Vec::new();
        for s in &self.slots {
            caps.extend([
                s.body.cell.capacity(),
                s.body.dx.capacity(),
                s.body.ux.capacity(),
                s.body.w.capacity(),
                s.ids.capacity(),
            ]);
        }
        caps.extend([
            self.td.cell.capacity(),
            self.td.dx.capacity(),
            self.td.id.capacity(),
            self.perm.capacity(),
            self.done.capacity(),
            self.drain_idx.capacity(),
            self.drain_recs.capacity(),
            self.drain_ids.capacity(),
        ]);
        for sp in &self.per_species {
            for t in &sp.tiles {
                caps.push(t.pending.capacity());
            }
            for a in &sp.arrivals {
                caps.push(a.capacity());
            }
        }
        caps
    }

    fn tile_of(&self, cell: u32) -> usize {
        cell as usize / self.policy.tile_cells
    }

    fn spill_path(&self, si: usize, t: usize) -> PathBuf {
        self.policy
            .spill_dir
            .as_ref()
            .expect("spill path without spill dir")
            .join(format!("tile-s{si}-t{t}.ptl"))
    }

    /// Encode `self.td` and store it as tile `(si, t)`'s cold state.
    fn store_td(&mut self, si: usize, t: usize) -> TileState {
        let n = self.td.len();
        if n == 0 {
            return TileState::Empty;
        }
        let t0 = telemetry::now_ns();
        let blob = ptile::encode(&self.td, self.policy.compress);
        telemetry::hist!("tile.codec.encode.ns", telemetry::now_ns().saturating_sub(t0));
        telemetry::hist!("tile.codec.ratio.pct", (blob.len() * 100 / raw_size(n)) as u64);
        self.stats.encodes += 1;
        self.stats.encoded_bytes += blob.len() as u64;
        self.stats.raw_bytes_encoded += raw_size(n) as u64;
        if self.policy.spill_dir.is_some() {
            let path = self.spill_path(si, t);
            let mut w = ckpt::format::Writer::new();
            w.section("tile").put_raw(&blob);
            let t0 = telemetry::now_ns();
            let bytes = ckpt::file::save_atomic(&path, &w)
                .unwrap_or_else(|e| panic!("tile spill write {path:?}: {e}"));
            telemetry::hist!("tile.spill.write.ns", telemetry::now_ns().saturating_sub(t0));
            self.stats.spill_writes += 1;
            self.stats.spilled_bytes += bytes;
            TileState::Spilled { bytes }
        } else {
            TileState::Blob(blob)
        }
    }

    /// Decode tile `(si, t)`'s cold state into `self.td`. `state` must
    /// not be `Hot`.
    fn load_td(&mut self, si: usize, t: usize, state: TileState) {
        match state {
            TileState::Empty => {
                // clear via an empty decode so capacities persist
                self.td.cell.clear();
                self.td.dx.clear();
                self.td.dy.clear();
                self.td.dz.clear();
                self.td.ux.clear();
                self.td.uy.clear();
                self.td.uz.clear();
                self.td.w.clear();
                self.td.id.clear();
            }
            TileState::Blob(blob) => {
                let t0 = telemetry::now_ns();
                ptile::decode_into(&blob, &mut self.td)
                    .unwrap_or_else(|e| panic!("tile blob s{si} t{t}: {e}"));
                telemetry::hist!("tile.codec.decode.ns", telemetry::now_ns().saturating_sub(t0));
                self.stats.decodes += 1;
            }
            TileState::Spilled { bytes } => {
                let path = self.spill_path(si, t);
                let t0 = telemetry::now_ns();
                let snap = ckpt::file::load(&path)
                    .unwrap_or_else(|e| panic!("tile spill read {path:?}: {e:?}"));
                let mut r = snap
                    .section("tile")
                    .unwrap_or_else(|e| panic!("tile spill section {path:?}: {e:?}"));
                ptile::decode_into(r.take_rest(), &mut self.td)
                    .unwrap_or_else(|e| panic!("tile spill blob {path:?}: {e}"));
                r.finish().unwrap_or_else(|e| panic!("tile spill trailer {path:?}: {e:?}"));
                // a spill file is a single-read cache: the tile's truth is
                // now in RAM, so the file is dead weight (and would go
                // stale the moment the hot copy advances). Removing it
                // here is what keeps the spill dir bounded by the *cold*
                // population instead of by every tile ever evicted.
                let _ = std::fs::remove_file(&path);
                telemetry::hist!("tile.spill.read.ns", telemetry::now_ns().saturating_sub(t0));
                self.stats.spill_reads += 1;
                self.stats.spilled_bytes = self.stats.spilled_bytes.saturating_sub(bytes);
                self.stats.decodes += 1;
            }
            TileState::Hot(_) => unreachable!("load_td on a hot tile"),
        }
    }

    /// Free a pool slot, evicting the deterministic LRU victim (lowest
    /// stamp, then lowest slot index) if none is vacant.
    fn acquire_slot(&mut self) -> usize {
        if let Some(free) = self.slots.iter().position(|s| s.owner.is_none()) {
            return free;
        }
        let victim = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(i, s)| (s.stamp, *i))
            .map(|(i, _)| i)
            .expect("pool has at least one slot");
        let (vsi, vt) = self.slots[victim].owner.take().expect("victim owner");
        {
            let slot = &mut self.slots[victim];
            swap_td_slot(&mut self.td, &mut slot.body, &mut slot.ids);
        }
        let state = self.store_td(vsi, vt);
        self.per_species[vsi].tiles[vt].state = state;
        self.stats.evictions += 1;
        telemetry::count("tile.evictions", 1);
        victim
    }

    /// Make tile `(si, t)` hot, returning its pool slot.
    fn fetch(&mut self, si: usize, t: usize) -> usize {
        self.stats.fetches += 1;
        telemetry::count("tile.fetches", 1);
        self.clock += 1;
        if let TileState::Hot(slot) = self.per_species[si].tiles[t].state {
            self.stats.hot_hits += 1;
            telemetry::count("tile.hot_hits", 1);
            self.slots[slot].stamp = self.clock;
            return slot;
        }
        let slot = self.acquire_slot();
        let state = std::mem::replace(&mut self.per_species[si].tiles[t].state, TileState::Hot(slot));
        self.load_td(si, t, state);
        let sp = &self.per_species[si];
        let s = &mut self.slots[slot];
        swap_td_slot(&mut self.td, &mut s.body, &mut s.ids);
        s.body.q = sp.q;
        s.body.m = sp.m;
        s.owner = Some((si, t));
        s.stamp = self.clock;
        debug_assert_eq!(s.body.len(), sp.tiles[t].count, "tile s{si} t{t} count drift");
        slot
    }

    /// Take ownership of `source`'s particles, assigning canonical ids
    /// in array order and distributing cell-sorted tiles. `source` is
    /// left empty (metadata intact).
    pub fn load_species(&mut self, si: usize, source: &mut Species) {
        self.per_species[si].q = source.q;
        self.per_species[si].m = source.m;
        let n = source.len();
        let mut by_tile: Vec<Vec<usize>> = vec![Vec::new(); self.tile_count];
        for i in 0..n {
            by_tile[self.tile_of(source.cell[i])].push(i);
        }
        for (t, idxs) in by_tile.iter_mut().enumerate() {
            // id = original index, so (cell, id) order = stable-by-cell
            idxs.sort_by_key(|&i| source.cell[i]);
            self.td.cell.clear();
            self.td.dx.clear();
            self.td.dy.clear();
            self.td.dz.clear();
            self.td.ux.clear();
            self.td.uy.clear();
            self.td.uz.clear();
            self.td.w.clear();
            self.td.id.clear();
            for &i in idxs.iter() {
                self.td.cell.push(source.cell[i]);
                self.td.dx.push(source.dx[i]);
                self.td.dy.push(source.dy[i]);
                self.td.dz.push(source.dz[i]);
                self.td.ux.push(source.ux[i]);
                self.td.uy.push(source.uy[i]);
                self.td.uz.push(source.uz[i]);
                self.td.w.push(source.w[i]);
                self.td.id.push(i as u64);
            }
            let state = self.store_td(si, t);
            let tile = &mut self.per_species[si].tiles[t];
            tile.count = idxs.len();
            tile.state = state;
        }
        source.cell.clear();
        source.dx.clear();
        source.dy.clear();
        source.dz.clear();
        source.ux.clear();
        source.uy.clear();
        source.uz.clear();
        source.w.clear();
        source.mark_unsorted();
    }

    /// Reassemble species `si` into `dest` in canonical (id) order —
    /// the exact array order an untiled, sort-free run would have, so
    /// energies and checkpoints match the untiled path bitwise.
    pub fn unload_species(&mut self, si: usize, dest: &mut Species) {
        let mut all: Vec<(u64, ParticleRecord)> = Vec::new();
        // flush hot slots owned by this species
        for slot in &mut self.slots {
            if let Some((osi, ot)) = slot.owner {
                if osi == si {
                    for i in 0..slot.body.len() {
                        all.push((slot.ids[i], slot.body.record(i)));
                    }
                    slot.owner = None;
                    slot.ids.clear();
                    slot.body.cell.clear();
                    slot.body.dx.clear();
                    slot.body.dy.clear();
                    slot.body.dz.clear();
                    slot.body.ux.clear();
                    slot.body.uy.clear();
                    slot.body.uz.clear();
                    slot.body.w.clear();
                    self.per_species[si].tiles[ot].state = TileState::Empty;
                }
            }
        }
        for t in 0..self.tile_count {
            let state = std::mem::replace(&mut self.per_species[si].tiles[t].state, TileState::Empty);
            if !matches!(state, TileState::Hot(_) | TileState::Empty) {
                // `load_td` also unlinks a spilled tile's file, so a full
                // unload leaves the spill dir empty
                self.load_td(si, t, state);
                for i in 0..self.td.len() {
                    all.push((
                        self.td.id[i],
                        ParticleRecord {
                            dx: self.td.dx[i],
                            dy: self.td.dy[i],
                            dz: self.td.dz[i],
                            cell: self.td.cell[i],
                            ux: self.td.ux[i],
                            uy: self.td.uy[i],
                            uz: self.td.uz[i],
                            w: self.td.w[i],
                        },
                    ));
                }
            }
            let tile = &mut self.per_species[si].tiles[t];
            tile.count = 0;
            all.append(&mut tile.pending);
        }
        for a in &mut self.per_species[si].arrivals {
            all.append(a);
        }
        // ids are unique, so the order is total and canonical
        all.sort_unstable_by_key(|&(id, _)| id);
        for (_, rec) in &all {
            dest.push_record(rec);
        }
        dest.mark_unsorted();
    }

    /// One tiled particle phase: stream every species' tiles in fixed
    /// ascending order through arrival-append → `(cell, id)` sort →
    /// push → emigrant drain. The caller owns the surrounding field
    /// phases; deposits land in `acc` exactly as the untiled push.
    pub fn step_all<S: ExecSpace>(
        &mut self,
        space: &S,
        strategy: Strategy,
        grid: &Grid,
        interps: &[Interpolator],
        acc: &Accumulator,
    ) -> PushStats {
        let mut stats = PushStats::default();
        let tile_cells = self.policy.tile_cells;
        for si in 0..self.per_species.len() {
            // phase split: last step's crossings become this step's
            // arrivals; this step's crossings go to fresh pending
            {
                let sp = &mut self.per_species[si];
                for t in 0..self.tile_count {
                    std::mem::swap(&mut sp.tiles[t].pending, &mut sp.arrivals[t]);
                }
            }
            for t in 0..self.tile_count {
                if self.per_species[si].tiles[t].count == 0
                    && self.per_species[si].arrivals[t].is_empty()
                {
                    continue;
                }
                let slot = self.fetch(si, t);
                // append last step's immigrants, then restore the
                // (cell, id) invariant
                {
                    let s = &mut self.slots[slot];
                    for (id, rec) in self.per_species[si].arrivals[t].iter() {
                        s.body.push_record(rec);
                        s.ids.push(*id);
                    }
                    self.per_species[si].arrivals[t].clear();
                    sort_slot(&mut s.body, &mut s.ids, &mut self.perm, &mut self.done);
                }
                // fused per-tile traversal: gather + Boris + mover +
                // deposit on the execution space
                let pstats = {
                    let s = &mut self.slots[slot];
                    push_species_on(space, strategy, grid, &mut s.body, interps, acc)
                };
                stats.pushed += pstats.pushed;
                stats.crossings += pstats.crossings;
                // drain emigrants (ascending index order) into their
                // destination tiles' pending buffers
                {
                    let (lo, hi) = (t * tile_cells, ((t + 1) * tile_cells).min(self.cells));
                    let s = &mut self.slots[slot];
                    self.drain_idx.clear();
                    for i in 0..s.body.len() {
                        let c = s.body.cell[i] as usize;
                        if c < lo || c >= hi {
                            self.drain_idx.push(i);
                        }
                    }
                    if !self.drain_idx.is_empty() {
                        self.drain_recs.clear();
                        self.drain_ids.clear();
                        for &i in &self.drain_idx {
                            self.drain_ids.push(s.ids[i]);
                        }
                        s.body.drain_sorted_indices(&self.drain_idx, &mut self.drain_recs);
                        compact_ids(&mut s.ids, &self.drain_idx);
                        let sp = &mut self.per_species[si];
                        for (&id, rec) in self.drain_ids.iter().zip(self.drain_recs.iter()) {
                            let dest = rec.cell as usize / tile_cells;
                            sp.tiles[dest].pending.push((id, *rec));
                        }
                    }
                    self.per_species[si].tiles[t].count = s.body.len();
                }
            }
        }
        let hot_raw: u64 =
            self.slots.iter().map(|s| raw_size(s.body.len()) as u64).sum();
        self.stats.peak_hot_raw_bytes = self.stats.peak_hot_raw_bytes.max(hot_raw);
        telemetry::gauge_set!("tile.hot.raw_bytes", hot_raw as i64);
        stats
    }
}

/// Spill files are scratch, not durable state: an engine dropped without
/// a full unload (a tiled `Simulation` going out of scope, a quarantined
/// job being discarded) must not leave `.ptl` litter behind. Read-backs
/// already unlink eagerly, so only tiles still in `Spilled` state — plus
/// any `.tmp`/`.prev` siblings a crash-interrupted save staged — remain
/// to sweep.
impl Drop for TileEngine {
    fn drop(&mut self) {
        if self.policy.spill_dir.is_none() {
            return;
        }
        for si in 0..self.per_species.len() {
            for t in 0..self.tile_count {
                if matches!(self.per_species[si].tiles[t].state, TileState::Spilled { .. }) {
                    let path = self.spill_path(si, t);
                    let _ = std::fs::remove_file(ckpt::file::tmp_path(&path));
                    let _ = std::fs::remove_file(ckpt::file::prev_path(&path));
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;

    fn loaded(grid: &Grid, n: usize, seed: u64) -> Species {
        let mut s = Species::new("e", -1.0, 1.0);
        s.load_uniform(grid, n, 0.1, (0.05, 0.0, 0.0), 1.0, seed);
        s
    }

    #[test]
    fn load_then_unload_restores_canonical_order() {
        let grid = Grid::new(6, 6, 6);
        let mut s = loaded(&grid, 500, 3);
        let before: Vec<ParticleRecord> = (0..s.len()).map(|p| s.record(p)).collect();
        for tile_cells in [1, 7, 64, 1000] {
            let mut engine = TileEngine::new(TilePolicy::new(tile_cells), grid.cells(), 1);
            engine.load_species(0, &mut s);
            assert!(s.is_empty());
            assert_eq!(engine.particle_count(), 500);
            engine.unload_species(0, &mut s);
            let after: Vec<ParticleRecord> = (0..s.len()).map(|p| s.record(p)).collect();
            assert_eq!(after, before, "tile_cells={tile_cells}");
        }
    }

    #[test]
    fn spill_round_trips_through_disk() {
        let grid = Grid::new(4, 4, 4);
        let dir = std::env::temp_dir().join(format!("ptile-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut s = loaded(&grid, 300, 9);
        let before: Vec<ParticleRecord> = (0..s.len()).map(|p| s.record(p)).collect();
        let mut policy = TilePolicy::new(8);
        policy.spill_dir = Some(dir.clone());
        let mut engine = TileEngine::new(policy, grid.cells(), 1);
        engine.load_species(0, &mut s);
        assert!(engine.stats().spill_writes > 0);
        assert!(engine.stats().spilled_bytes > 0);
        engine.unload_species(0, &mut s);
        let after: Vec<ParticleRecord> = (0..s.len()).map(|p| s.record(p)).collect();
        assert_eq!(after, before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_is_bounded_by_pool_size() {
        let grid = Grid::new(8, 8, 8);
        let mut s = loaded(&grid, 2000, 5);
        let mut policy = TilePolicy::new(16);
        policy.max_hot = 2;
        let mut engine = TileEngine::new(policy, grid.cells(), 1);
        engine.load_species(0, &mut s);
        // touch every tile twice; the pool must stay at 2 hot slots
        let f = crate::field::FieldArray::new(grid.clone());
        let interps = crate::interp::load_interpolators(&f);
        let acc = Accumulator::new(grid.cells(), 1, pk::atomic::ScatterMode::Atomic);
        for _ in 0..2 {
            acc.reset();
            engine.step_all(&pk::Serial, Strategy::Auto, &grid, &interps, &acc);
        }
        assert_eq!(engine.slots.len(), 2);
        assert!(engine.stats().evictions > 0, "more tiles than slots must evict");
        assert_eq!(engine.particle_count(), 2000, "no particle lost");
    }

    #[test]
    fn spill_dir_is_clean_after_full_cycle_and_after_drop() {
        let dir =
            std::env::temp_dir().join(format!("ptile-leak-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let list = |tag: &str| -> Vec<String> {
            std::fs::read_dir(&dir)
                .unwrap()
                .map(|e| format!("{tag}: {:?}", e.unwrap().file_name()))
                .collect()
        };
        let mut policy = TilePolicy::new(8);
        policy.max_hot = 2;
        policy.spill_dir = Some(dir.clone());
        // enable → step → disable must leave the spill dir empty: every
        // spilled tile is either read back (unlinked eagerly) or swept by
        // the unload
        let mut sim = crate::deck::Deck::weibel(4, 4, 4, 4, 0.3).build();
        sim.enable_tiling(policy.clone());
        sim.run(3);
        assert!(sim.tile_engine().unwrap().stats().spill_writes > 0, "test must spill");
        sim.disable_tiling();
        let leftovers = list("after disable");
        assert!(leftovers.is_empty(), "spill files leaked: {leftovers:?}");
        // dropping a still-tiled simulation (quarantine/discard path)
        // sweeps whatever is still spilled, including .prev/.tmp litter
        let mut sim = crate::deck::Deck::weibel(4, 4, 4, 4, 0.3).build();
        sim.enable_tiling(policy);
        sim.run(2);
        drop(sim);
        let leftovers = list("after drop");
        assert!(leftovers.is_empty(), "dropped engine leaked spill files: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_ids_mirrors_drain() {
        let mut ids = vec![10u64, 11, 12, 13, 14, 15];
        compact_ids(&mut ids, &[1, 4]);
        assert_eq!(ids, vec![10, 12, 13, 15]);
        compact_ids(&mut ids, &[]);
        assert_eq!(ids, vec![10, 12, 13, 15]);
        compact_ids(&mut ids, &[0, 1, 2, 3]);
        assert!(ids.is_empty());
    }
}
