//! Benchmark decks: reproducible simulation setups.
//!
//! VPIC runs are configured by "decks"; the paper's evaluation uses a
//! laser–plasma instability (LPI) deck throughout. Three decks are
//! provided, covering the scenarios the repro harness and examples need:
//!
//! * [`Deck::uniform`] — a quiet neutral thermal plasma (correctness /
//!   baseline deck);
//! * [`Deck::weibel`] — counter-streaming electron beams whose anisotropy
//!   drives magnetic field growth (the classic Weibel instability);
//! * [`Deck::lpi`] — a laser antenna driving a plasma slab, the
//!   reproduction's stand-in for the paper's LPI benchmark.

use crate::constants::ION_MASS_RATIO;
use crate::grid::Grid;
use crate::sim::{LaserDriver, Simulation};
use crate::species::Species;
use serde::Serialize;

/// A reproducible simulation configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Deck {
    /// Deck name (appears in harness output).
    pub name: String,
    /// Grid extent in cells.
    pub shape: (usize, usize, usize),
    /// Electron macro-particles per cell.
    pub ppc: usize,
    /// Electron thermal momentum spread.
    pub vth: f32,
    /// Electron drift (two beams get ±drift).
    pub drift: (f32, f32, f32),
    /// Whether to add a mobile ion background (colocated, neutralizing).
    pub ions: bool,
    /// Two counter-streaming electron beams instead of one population.
    pub counter_streaming: bool,
    /// Laser antenna configuration.
    pub laser: Option<(usize, f32, f32)>, // (plane, amplitude, omega)
    /// Target plasma frequency in normalized units. Macro-particle
    /// weights are scaled so `ω_p² = weight × ppc`; keeping
    /// `ω_p·dt ≲ 0.3` resolves the plasma oscillation (the PIC stability
    /// condition `ω_p·dt < 2` with margin).
    pub omega_p: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Deck {
    /// A quiet, neutral, thermal plasma.
    pub fn uniform(nx: usize, ny: usize, nz: usize, ppc: usize) -> Self {
        Self {
            name: "uniform-thermal".into(),
            shape: (nx, ny, nz),
            ppc,
            vth: 0.05,
            drift: (0.0, 0.0, 0.0),
            ions: true,
            counter_streaming: false,
            laser: None,
            omega_p: 0.3,
            seed: 20250707,
        }
    }

    /// Counter-streaming beams along ±z → Weibel filamentation.
    pub fn weibel(nx: usize, ny: usize, nz: usize, ppc: usize, u_beam: f32) -> Self {
        Self {
            name: "weibel".into(),
            shape: (nx, ny, nz),
            ppc,
            vth: 0.01,
            drift: (0.0, 0.0, u_beam),
            ions: true,
            counter_streaming: true,
            laser: None,
            omega_p: 0.4,
            seed: 8,
        }
    }

    /// Laser–plasma interaction: antenna at `x = 0` driving a thermal
    /// slab (the paper's benchmark analog).
    pub fn lpi(nx: usize, ny: usize, nz: usize, ppc: usize) -> Self {
        Self {
            name: "lpi".into(),
            shape: (nx, ny, nz),
            ppc,
            vth: 0.02,
            drift: (0.0, 0.0, 0.0),
            ions: true,
            counter_streaming: false,
            // λ = 8 cells → ω = 2π/8; amplitude in the mildly
            // relativistic regime the paper's LPI deck probes
            laser: Some((0, 0.2, std::f32::consts::TAU / 8.0)),
            omega_p: 0.3,
            seed: 42,
        }
    }

    /// Total electron macro-particles this deck loads.
    pub fn electron_count(&self) -> usize {
        self.shape.0 * self.shape.1 * self.shape.2 * self.ppc
    }

    /// Build the simulation: load species, set drivers.
    pub fn build(&self) -> Simulation {
        let grid = Grid::new(self.shape.0, self.shape.1, self.shape.2);
        let mut sim = Simulation::new(grid.clone());
        let n = self.electron_count();
        // weight so that total electron density gives the target ω_p
        let w = self.omega_p * self.omega_p / self.ppc as f32;
        if self.counter_streaming {
            let half = n / 2;
            let mut up = Species::new("electron+", -1.0, 1.0);
            up.load_uniform(&grid, half, self.vth, self.drift, w, self.seed);
            let mut down = Species::new("electron-", -1.0, 1.0);
            let neg = (-self.drift.0, -self.drift.1, -self.drift.2);
            down.load_uniform(&grid, n - half, self.vth, neg, w, self.seed ^ 0xBEEF);
            if self.ions {
                sim.add_species(neutralizer(&[&up, &down]));
            }
            sim.add_species(up);
            sim.add_species(down);
        } else {
            let mut e = Species::new("electron", -1.0, 1.0);
            e.load_uniform(&grid, n, self.vth, self.drift, w, self.seed);
            if self.ions {
                sim.add_species(neutralizer(&[&e]));
            }
            sim.add_species(e);
        }
        if let Some((plane, amplitude, omega)) = self.laser {
            sim.laser = Some(LaserDriver { plane, amplitude, omega });
        }
        sim
    }
}

/// A cold ion species exactly colocated with the given electrons so the
/// initial state is charge-neutral node by node.
fn neutralizer(electrons: &[&Species]) -> Species {
    let mut ion = Species::new("ion", 1.0, ION_MASS_RATIO);
    for e in electrons {
        for p in 0..e.len() {
            ion.push_particle(
                e.dx[p], e.dy[p], e.dz[p], e.cell[p], 0.0, 0.0, 0.0, e.w[p],
            );
        }
    }
    ion
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_deck_is_neutral_and_quiet() {
        let sim = Deck::uniform(4, 4, 4, 8).build();
        assert_eq!(sim.species.len(), 2);
        let total_q: f64 = sim.species.iter().map(|s| s.charge()).sum();
        assert!(total_q.abs() < 1e-9, "net charge {total_q}");
        assert!(sim.gauss_residual() < 1e-5);
        assert_eq!(sim.particle_count(), 2 * 4 * 4 * 4 * 8);
    }

    #[test]
    fn weibel_deck_has_two_opposed_beams() {
        let sim = Deck::weibel(4, 4, 8, 8, 0.3).build();
        assert_eq!(sim.species.len(), 3);
        let up = &sim.species[1];
        let down = &sim.species[2];
        let mean = |s: &Species| s.uz.iter().map(|&u| u as f64).sum::<f64>() / s.len() as f64;
        assert!(mean(up) > 0.25);
        assert!(mean(down) < -0.25);
        // net current ≈ 0
        let (_, _, pz_up) = up.momentum();
        let (_, _, pz_down) = down.momentum();
        assert!((pz_up + pz_down).abs() / pz_up.abs() < 0.1);
    }

    #[test]
    fn weibel_grows_magnetic_field() {
        let mut sim = Deck::weibel(8, 8, 8, 16, 0.4).build();
        let (_, b0) = sim.fields.energies();
        assert_eq!(b0, 0.0);
        sim.run(60);
        let (_, b1) = sim.fields.energies();
        assert!(b1 > 1e-8, "Weibel filamentation must grow B: {b1}");
        // and the energy comes from the beams: kinetic energy drops
        let snap = sim.energies();
        assert!(snap.field_b > 0.0);
    }

    #[test]
    fn lpi_deck_drives_laser_into_plasma() {
        let mut sim = Deck::lpi(24, 4, 4, 4).build();
        assert!(sim.laser.is_some());
        let ke0: f64 = sim.energies().kinetic.iter().sum();
        sim.run(60);
        let snap = sim.energies();
        let ke1: f64 = snap.kinetic.iter().sum();
        assert!(snap.field_e + snap.field_b > 0.0, "laser field present");
        assert!(ke1 > ke0, "plasma heated by the laser: {ke0} → {ke1}");
    }

    #[test]
    fn decks_are_reproducible() {
        let a = Deck::lpi(8, 4, 4, 4).build();
        let b = Deck::lpi(8, 4, 4, 4).build();
        assert_eq!(a.species[1].cell, b.species[1].cell);
        assert_eq!(a.species[1].ux, b.species[1].ux);
    }

    #[test]
    fn electron_count_formula() {
        let d = Deck::uniform(4, 5, 6, 7);
        assert_eq!(d.electron_count(), 4 * 5 * 6 * 7);
    }
}
