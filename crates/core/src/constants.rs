//! Normalized units and numerical constants.
//!
//! The simulation uses VPIC-style normalized units: lengths in cells,
//! time in units where `c = 1`, charge/mass in units of the electron's.
//! All stability margins live here so decks and tests share them.

/// Speed of light (normalization anchor).
pub const C: f32 = 1.0;

/// Electron charge in normalized units (negative by convention).
pub const ELECTRON_Q: f32 = -1.0;

/// Electron mass in normalized units.
pub const ELECTRON_M: f32 = 1.0;

/// Ion (proton) mass ratio used by the default decks. A reduced mass
/// ratio (100 instead of 1836) is standard practice for benchmark decks —
/// it shortens the ion timescale so short runs exercise both species.
pub const ION_MASS_RATIO: f32 = 100.0;

/// Courant safety factor applied below the 3-D CFL limit.
pub const CFL_SAFETY: f32 = 0.95;

/// 3-D Courant limit for unit cells: `c·dt < 1/√3`.
pub fn courant_dt(dx: f32, dy: f32, dz: f32) -> f32 {
    let inv = (1.0 / (dx * dx) + 1.0 / (dy * dy) + 1.0 / (dz * dz)).sqrt();
    CFL_SAFETY / inv
}

/// Maximum momentum-per-step such that a particle crosses at most one
/// cell boundary per dimension per step (the mover's contract).
pub const MAX_CELL_FRACTION_PER_STEP: f32 = 1.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn courant_unit_cube() {
        let dt = courant_dt(1.0, 1.0, 1.0);
        assert!(dt < 1.0 / 3f32.sqrt());
        assert!(dt > 0.5 / 3f32.sqrt());
    }

    #[test]
    fn courant_tightens_with_smaller_cells() {
        assert!(courant_dt(0.5, 1.0, 1.0) < courant_dt(1.0, 1.0, 1.0));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the conventions
    fn charge_sign_conventions() {
        assert!(ELECTRON_Q < 0.0);
        assert_eq!(ELECTRON_M, 1.0);
        assert!(ION_MASS_RATIO > 1.0);
    }
}
