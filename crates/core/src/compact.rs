//! Mixed-precision particle storage (the paper's §2.3 pointer to the
//! authors' memory-optimization line of work: "Previous work investigated
//! using mixed precision to improve problem size scalability" [19, 20]).
//!
//! Positions are stored as 16-bit fixed point *within the owning cell* —
//! safe because cell-relative offsets are bounded in `[-1, 1]` and the
//! fields a particle sees vary smoothly across one cell — while momenta
//! (whose dynamic range is unbounded) stay f32. The record shrinks from
//! 32 B to 22 B (31%), matching the spirit of the 10-trillion-particle
//! memory work.

use crate::species::Species;

/// Quantization scale: offsets in `[-1, 1]` map to `[-32767, 32767]`.
const SCALE: f32 = 32767.0;

/// Quantize one offset.
#[inline(always)]
pub fn quantize(x: f32) -> i16 {
    debug_assert!((-1.0..=1.0).contains(&x));
    (x * SCALE).round() as i16
}

/// Dequantize one offset.
#[inline(always)]
pub fn dequantize(q: i16) -> f32 {
    q as f32 / SCALE
}

/// Worst-case quantization error in offset units (half a quantum).
pub const MAX_QUANT_ERROR: f32 = 0.5 / SCALE;

/// A compressed particle store: 16-bit positions, f32 momenta, uniform
/// weight. 22 bytes per particle vs 32 for the full-precision SoA.
#[derive(Debug, Clone)]
pub struct CompactParticles {
    /// Species name.
    pub name: String,
    /// Charge.
    pub q: f32,
    /// Mass.
    pub m: f32,
    /// Shared statistical weight (uniform-weight decks only).
    pub weight: f32,
    /// Quantized cell-relative offsets.
    pub dx: Vec<i16>,
    /// See [`CompactParticles::dx`].
    pub dy: Vec<i16>,
    /// See [`CompactParticles::dx`].
    pub dz: Vec<i16>,
    /// Owning cell per particle.
    pub cell: Vec<u32>,
    /// Momentum γβx (full precision).
    pub ux: Vec<f32>,
    /// Momentum γβy.
    pub uy: Vec<f32>,
    /// Momentum γβz.
    pub uz: Vec<f32>,
}

impl CompactParticles {
    /// Compress a species. Requires uniform weights (the common case for
    /// benchmark decks); returns `Err` with the offending index otherwise.
    pub fn from_species(s: &Species) -> Result<Self, usize> {
        let weight = s.w.first().copied().unwrap_or(1.0);
        if let Some(bad) = s.w.iter().position(|&w| w != weight) {
            return Err(bad);
        }
        Ok(Self {
            name: s.name.clone(),
            q: s.q,
            m: s.m,
            weight,
            dx: s.dx.iter().map(|&x| quantize(x)).collect(),
            dy: s.dy.iter().map(|&x| quantize(x)).collect(),
            dz: s.dz.iter().map(|&x| quantize(x)).collect(),
            cell: s.cell.clone(),
            ux: s.ux.clone(),
            uy: s.uy.clone(),
            uz: s.uz.clone(),
        })
    }

    /// Decompress back to a full-precision species.
    pub fn to_species(&self) -> Species {
        let mut s = Species::new(self.name.clone(), self.q, self.m);
        s.dx = self.dx.iter().map(|&q| dequantize(q)).collect();
        s.dy = self.dy.iter().map(|&q| dequantize(q)).collect();
        s.dz = self.dz.iter().map(|&q| dequantize(q)).collect();
        s.cell = self.cell.clone();
        s.ux = self.ux.clone();
        s.uy = self.uy.clone();
        s.uz = self.uz.clone();
        s.w = vec![self.weight; self.cell.len()];
        s
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.cell.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.cell.is_empty()
    }

    /// Bytes per particle in this representation.
    pub const BYTES_PER_PARTICLE: usize = 3 * 2 + 4 + 3 * 4;

    /// Bytes per particle in the full-precision SoA.
    pub const FULL_BYTES_PER_PARTICLE: usize = 8 * 4;

    /// Total storage of the particle arrays.
    pub fn memory_bytes(&self) -> usize {
        self.len() * Self::BYTES_PER_PARTICLE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use crate::Deck;

    #[test]
    fn quantization_roundtrip_error_is_bounded() {
        for i in -1000..=1000 {
            let x = i as f32 / 1000.0;
            let err = (dequantize(quantize(x)) - x).abs();
            assert!(err <= MAX_QUANT_ERROR * 1.01, "x={x}: err {err}");
        }
        assert_eq!(dequantize(quantize(1.0)), 1.0);
        assert_eq!(dequantize(quantize(-1.0)), -1.0);
        assert_eq!(dequantize(quantize(0.0)), 0.0);
    }

    #[test]
    fn compression_ratio_is_31_percent() {
        assert_eq!(CompactParticles::BYTES_PER_PARTICLE, 22);
        assert_eq!(CompactParticles::FULL_BYTES_PER_PARTICLE, 32);
        let saved = 1.0
            - CompactParticles::BYTES_PER_PARTICLE as f64
                / CompactParticles::FULL_BYTES_PER_PARTICLE as f64;
        assert!((0.30..0.33).contains(&saved));
    }

    #[test]
    fn species_roundtrip_preserves_momenta_exactly() {
        let grid = Grid::new(4, 4, 4);
        let mut s = Species::new("e", -1.0, 1.0);
        s.load_uniform(&grid, 500, 0.2, (0.1, 0.0, 0.0), 0.01, 7);
        let c = CompactParticles::from_species(&s).unwrap();
        assert_eq!(c.memory_bytes(), 500 * 22);
        let back = c.to_species();
        assert_eq!(back.ux, s.ux, "momenta are lossless");
        assert_eq!(back.cell, s.cell);
        for i in 0..s.len() {
            assert!((back.dx[i] - s.dx[i]).abs() <= MAX_QUANT_ERROR * 1.01);
        }
        back.validate(&grid).unwrap();
    }

    #[test]
    fn nonuniform_weights_are_rejected() {
        let mut s = Species::new("e", -1.0, 1.0);
        s.push_particle(0.0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 1.0);
        s.push_particle(0.0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 2.0);
        assert_eq!(CompactParticles::from_species(&s), Err(1));
    }

    impl PartialEq for CompactParticles {
        fn eq(&self, other: &Self) -> bool {
            self.cell == other.cell && self.dx == other.dx
        }
    }

    #[test]
    fn physics_tolerates_quantization() {
        // run the same deck full-precision and through a compress/
        // decompress cycle every 5 steps: energies stay within tolerance
        let mut reference = Deck::uniform(6, 6, 6, 8).build();
        let mut lossy = Deck::uniform(6, 6, 6, 8).build();
        for _ in 0..4 {
            reference.run(5);
            lossy.run(5);
            for s in &mut lossy.species {
                let c = CompactParticles::from_species(s).unwrap();
                *s = c.to_species();
            }
        }
        let e_ref = reference.energies().total();
        let e_lossy = lossy.energies().total();
        let rel = ((e_lossy - e_ref) / e_ref).abs();
        assert!(rel < 1e-3, "quantization perturbed energy by {rel:.2e}");
    }
}
