//! Electromagnetic fields on the Yee mesh and the FDTD advance.
//!
//! Per voxel `v` (VPIC's staggering):
//!
//! * `ex(v)` lives on the x-edge at `(ix+½, iy, iz)`; `ey`, `ez` likewise.
//! * `bx(v)` lives on the x-face at `(ix, iy+½, iz+½)`; `by`, `bz` likewise.
//! * `jx/jy/jz` are colocated with the corresponding E components.
//!
//! Units are normalized (`c = 1`, unit cells): the advance uses the raw
//! `dt` factors. B is advanced in half steps around the E update, the
//! standard leapfrog VPIC uses.

use crate::grid::Grid;

/// The field state: E, B, and the current J accumulated by the push.
#[derive(Debug, Clone)]
pub struct FieldArray {
    /// Grid geometry this field lives on.
    pub grid: Grid,
    /// Electric field components (edge-centered).
    pub ex: Vec<f32>,
    /// See [`FieldArray::ex`].
    pub ey: Vec<f32>,
    /// See [`FieldArray::ex`].
    pub ez: Vec<f32>,
    /// Magnetic field components (face-centered).
    pub bx: Vec<f32>,
    /// See [`FieldArray::bx`].
    pub by: Vec<f32>,
    /// See [`FieldArray::bx`].
    pub bz: Vec<f32>,
    /// Current density components (colocated with E).
    pub jx: Vec<f32>,
    /// See [`FieldArray::jx`].
    pub jy: Vec<f32>,
    /// See [`FieldArray::jx`].
    pub jz: Vec<f32>,
}

impl FieldArray {
    /// Zero-initialized fields on `grid`.
    pub fn new(grid: Grid) -> Self {
        let n = grid.cells();
        Self {
            grid,
            ex: vec![0.0; n],
            ey: vec![0.0; n],
            ez: vec![0.0; n],
            bx: vec![0.0; n],
            by: vec![0.0; n],
            bz: vec![0.0; n],
            jx: vec![0.0; n],
            jy: vec![0.0; n],
            jz: vec![0.0; n],
        }
    }

    /// Zero the current arrays (start of every step).
    pub fn clear_j(&mut self) {
        self.jx.fill(0.0);
        self.jy.fill(0.0);
        self.jz.fill(0.0);
    }

    /// Advance B by `frac·dt` with `∂B/∂t = −∇×E` (call with `0.5`
    /// before and after the E update for the leapfrog).
    pub fn advance_b(&mut self, frac: f32) {
        let g = self.grid.clone();
        let dt = g.dt * frac;
        let (rdx, rdy, rdz) = (1.0 / g.dx, 1.0 / g.dy, 1.0 / g.dz);
        for v in 0..g.cells() {
            let xp = g.neighbor(v, (1, 0, 0));
            let yp = g.neighbor(v, (0, 1, 0));
            let zp = g.neighbor(v, (0, 0, 1));
            self.bx[v] -= dt * ((self.ez[yp] - self.ez[v]) * rdy - (self.ey[zp] - self.ey[v]) * rdz);
            self.by[v] -= dt * ((self.ex[zp] - self.ex[v]) * rdz - (self.ez[xp] - self.ez[v]) * rdx);
            self.bz[v] -= dt * ((self.ey[xp] - self.ey[v]) * rdx - (self.ex[yp] - self.ex[v]) * rdy);
        }
    }

    /// Advance E by a full `dt` with `∂E/∂t = ∇×B − J`.
    pub fn advance_e(&mut self) {
        let g = self.grid.clone();
        let dt = g.dt;
        let (rdx, rdy, rdz) = (1.0 / g.dx, 1.0 / g.dy, 1.0 / g.dz);
        for v in 0..g.cells() {
            let xm = g.neighbor(v, (-1, 0, 0));
            let ym = g.neighbor(v, (0, -1, 0));
            let zm = g.neighbor(v, (0, 0, -1));
            self.ex[v] += dt
                * ((self.bz[v] - self.bz[ym]) * rdy - (self.by[v] - self.by[zm]) * rdz
                    - self.jx[v]);
            self.ey[v] += dt
                * ((self.bx[v] - self.bx[zm]) * rdz - (self.bz[v] - self.bz[xm]) * rdx
                    - self.jy[v]);
            self.ez[v] += dt
                * ((self.by[v] - self.by[xm]) * rdx - (self.bx[v] - self.bx[ym]) * rdy
                    - self.jz[v]);
        }
    }

    /// Field energy `½∫(E² + B²)dV`, split as `(electric, magnetic)`.
    pub fn energies(&self) -> (f64, f64) {
        let cell_v = (self.grid.dx * self.grid.dy * self.grid.dz) as f64;
        let sum_sq = |a: &[f32]| -> f64 { a.iter().map(|&x| (x as f64) * (x as f64)).sum() };
        let e = 0.5 * cell_v * (sum_sq(&self.ex) + sum_sq(&self.ey) + sum_sq(&self.ez));
        let b = 0.5 * cell_v * (sum_sq(&self.bx) + sum_sq(&self.by) + sum_sq(&self.bz));
        (e, b)
    }

    /// Discrete `∇·B` at the cell's node-dual (must stay ≈0 under FDTD).
    pub fn div_b(&self, v: usize) -> f32 {
        let g = &self.grid;
        let xp = g.neighbor(v, (1, 0, 0));
        let yp = g.neighbor(v, (0, 1, 0));
        let zp = g.neighbor(v, (0, 0, 1));
        (self.bx[xp] - self.bx[v]) / g.dx
            + (self.by[yp] - self.by[v]) / g.dy
            + (self.bz[zp] - self.bz[v]) / g.dz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane_wave(n: usize) -> FieldArray {
        // +x-travelling wave: Ez = sin(kx), By = -sin(kx) at the staggered
        // positions (ez at node-x, by at x+1/2)
        let g = Grid::new(n, 4, 4);
        let mut f = FieldArray::new(g.clone());
        let k = 2.0 * std::f32::consts::PI / n as f32;
        for v in 0..g.cells() {
            let (ix, _, _) = g.coords(v);
            f.ez[v] = (k * ix as f32).sin();
            f.by[v] = -(k * (ix as f32 + 0.5)).sin();
        }
        f
    }

    fn total_energy(f: &FieldArray) -> f64 {
        let (e, b) = f.energies();
        e + b
    }

    #[test]
    fn vacuum_plane_wave_conserves_energy() {
        let mut f = plane_wave(32);
        let e0 = total_energy(&f);
        assert!(e0 > 0.0);
        // leapfrog: half B, then (E, full B) pairs
        f.advance_b(0.5);
        for _ in 0..200 {
            f.advance_e();
            f.advance_b(1.0);
        }
        f.advance_b(-0.5); // resync B to integer time for the energy check
        let e1 = total_energy(&f);
        let drift = ((e1 - e0) / e0).abs();
        assert!(drift < 0.02, "vacuum energy drift {drift}");
    }

    #[test]
    fn vacuum_wave_propagates_in_x() {
        let n = 64;
        let mut f = plane_wave(n);
        let probe = |f: &FieldArray| f.ez[f.grid.voxel(0, 0, 0)];
        let initial = probe(&f);
        assert_eq!(initial, 0.0); // sin(0)
        // advance a quarter period: T = wavelength / c = 64 steps of dt... use
        // enough steps that the phase visibly moves
        f.advance_b(0.5);
        let steps = (n as f32 / (4.0 * f.grid.dt)) as usize;
        for _ in 0..steps {
            f.advance_e();
            f.advance_b(1.0);
        }
        assert!(
            probe(&f).abs() > 0.5,
            "wave should have moved a quarter period: {}",
            probe(&f)
        );
    }

    #[test]
    fn div_b_stays_zero() {
        let mut f = plane_wave(16);
        f.advance_b(0.5);
        for _ in 0..50 {
            f.advance_e();
            f.advance_b(1.0);
        }
        for v in 0..f.grid.cells() {
            assert!(f.div_b(v).abs() < 1e-4, "div B at {v}: {}", f.div_b(v));
        }
    }

    #[test]
    fn uniform_current_drives_e_linearly() {
        let g = Grid::new(8, 8, 8);
        let dt = g.dt;
        let mut f = FieldArray::new(g);
        f.jx.fill(1.0);
        f.advance_e();
        assert!(f.ex.iter().all(|&e| (e + dt).abs() < 1e-6), "E = -J dt");
        assert!(f.ey.iter().all(|&e| e == 0.0));
    }

    #[test]
    fn clear_j_zeroes_currents_only() {
        let g = Grid::new(4, 4, 4);
        let mut f = FieldArray::new(g);
        f.jx.fill(2.0);
        f.ex.fill(3.0);
        f.clear_j();
        assert!(f.jx.iter().all(|&x| x == 0.0));
        assert!(f.ex.iter().all(|&x| x == 3.0));
    }

    #[test]
    fn static_uniform_b_is_a_fixed_point() {
        let g = Grid::new(6, 6, 6);
        let mut f = FieldArray::new(g);
        f.bz.fill(1.5);
        let before = f.clone();
        f.advance_b(0.5);
        f.advance_e();
        f.advance_b(1.0);
        assert_eq!(f.bz, before.bz);
        assert!(f.ex.iter().all(|&e| e == 0.0));
    }
}
