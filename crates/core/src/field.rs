//! Electromagnetic fields on the Yee mesh and the FDTD advance.
//!
//! Per voxel `v` (VPIC's staggering):
//!
//! * `ex(v)` lives on the x-edge at `(ix+½, iy, iz)`; `ey`, `ez` likewise.
//! * `bx(v)` lives on the x-face at `(ix, iy+½, iz+½)`; `by`, `bz` likewise.
//! * `jx/jy/jz` are colocated with the corresponding E components.
//!
//! Units are normalized (`c = 1`, unit cells): the advance uses the raw
//! `dt` factors. B is advanced in half steps around the E update, the
//! standard leapfrog VPIC uses.
//!
//! ## Kernel structure (paper §3.1 applied to the field solve)
//!
//! The advance kernels sweep the grid one x-row (`(iy, iz)` pair) at a
//! time. [`Grid::interior_xs`] splits each row into an *interior* span —
//! where every stencil neighbor is an affine offset (`±1, ±nx, ±nx·ny`),
//! so the loop is unit-stride with loop-invariant strides and vectorizes —
//! and a boundary remainder that takes the general periodic
//! [`Grid::neighbor`] path. The interior span dispatches on
//! [`Strategy`]: *auto* is a plain fused scalar loop, *guided* splits the
//! sweep into one pass per field component (the paper's kernel
//! splitting), *manual* uses the portable [`SimdF32`] lanes and *ad hoc*
//! the [`V4F32`] intrinsics type — all through the shared
//! [`StencilLane`] op tree (`+`, `−`, `×` only; no FMA), so every
//! strategy and every worker count produces bit-identical fields.
//! Rows write disjoint output spans, which makes the row-parallel
//! `parallel_for` deterministic for free.

use crate::grid::{Grid, StencilSide};
use pk::{ExecSpace, SendPtr, Serial};
use std::ops::Range;
use vsimd::v4::V4F32;
use vsimd::{SimdF32, StencilLane, Strategy};

/// The field state: E, B, and the current J accumulated by the push.
#[derive(Debug, Clone)]
pub struct FieldArray {
    /// Grid geometry this field lives on.
    pub grid: Grid,
    /// Electric field components (edge-centered).
    pub ex: Vec<f32>,
    /// See [`FieldArray::ex`].
    pub ey: Vec<f32>,
    /// See [`FieldArray::ex`].
    pub ez: Vec<f32>,
    /// Magnetic field components (face-centered).
    pub bx: Vec<f32>,
    /// See [`FieldArray::bx`].
    pub by: Vec<f32>,
    /// See [`FieldArray::bx`].
    pub bz: Vec<f32>,
    /// Current density components (colocated with E).
    pub jx: Vec<f32>,
    /// See [`FieldArray::jx`].
    pub jy: Vec<f32>,
    /// See [`FieldArray::jx`].
    pub jz: Vec<f32>,
}

/// One interior curl-E pass: `dst[ix] -= dt·((p[v+sp]−p[v])·rp − (q[v+sq]−q[v])·rq)`
/// over `xs`, with `dst` row-local (indexed by `ix`) and `p`/`q` global
/// (indexed by `v = v0+ix`). Lane-width generic; the scalar tail re-enters
/// at `L = f32`, so every width walks the same op tree.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn curl_e_pass<L: StencilLane>(
    p: &[f32],
    sp: usize,
    rp: f32,
    q: &[f32],
    sq: usize,
    rq: f32,
    dst: &mut [f32],
    v0: usize,
    xs: Range<usize>,
    dt: f32,
) {
    let (dtv, rpv, rqv) = (L::splat(dt), L::splat(rp), L::splat(rq));
    let mut ix = xs.start;
    while ix + L::LANES <= xs.end {
        let v = v0 + ix;
        let d = L::load(p, v + sp)
            .sub(L::load(p, v))
            .mul(rpv)
            .sub(L::load(q, v + sq).sub(L::load(q, v)).mul(rqv));
        L::load(dst, ix).sub(dtv.mul(d)).store(dst, ix);
        ix += L::LANES;
    }
    if ix < xs.end {
        curl_e_pass::<f32>(p, sp, rp, q, sq, rq, dst, v0, ix..xs.end, dt);
    }
}

/// One interior curl-B pass: `dst[ix] += dt·((p[v]−p[v−sp])·rp − (q[v]−q[v−sq])·rq − j[v])`.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn curl_b_pass<L: StencilLane>(
    p: &[f32],
    sp: usize,
    rp: f32,
    q: &[f32],
    sq: usize,
    rq: f32,
    j: &[f32],
    dst: &mut [f32],
    v0: usize,
    xs: Range<usize>,
    dt: f32,
) {
    let (dtv, rpv, rqv) = (L::splat(dt), L::splat(rp), L::splat(rq));
    let mut ix = xs.start;
    while ix + L::LANES <= xs.end {
        let v = v0 + ix;
        let d = L::load(p, v)
            .sub(L::load(p, v - sp))
            .mul(rpv)
            .sub(L::load(q, v).sub(L::load(q, v - sq)).mul(rqv))
            .sub(L::load(j, v));
        L::load(dst, ix).add(dtv.mul(d)).store(dst, ix);
        ix += L::LANES;
    }
    if ix < xs.end {
        curl_b_pass::<f32>(p, sp, rp, q, sq, rq, j, dst, v0, ix..xs.end, dt);
    }
}

impl FieldArray {
    /// Zero-initialized fields on `grid`.
    pub fn new(grid: Grid) -> Self {
        let n = grid.cells();
        Self {
            grid,
            ex: vec![0.0; n],
            ey: vec![0.0; n],
            ez: vec![0.0; n],
            bx: vec![0.0; n],
            by: vec![0.0; n],
            bz: vec![0.0; n],
            jx: vec![0.0; n],
            jy: vec![0.0; n],
            jz: vec![0.0; n],
        }
    }

    /// Zero the current arrays (start of every step).
    pub fn clear_j(&mut self) {
        self.clear_j_on(&Serial);
    }

    /// [`FieldArray::clear_j`] with the row sweep distributed over `space`.
    pub fn clear_j_on<S: ExecSpace>(&mut self, space: &S) {
        let nx = self.grid.nx;
        let rows = self.grid.rows();
        let jx = SendPtr::new(self.jx.as_mut_ptr());
        let jy = SendPtr::new(self.jy.as_mut_ptr());
        let jz = SendPtr::new(self.jz.as_mut_ptr());
        space.parallel_for(rows, move |r| {
            // SAFETY: row spans are disjoint and each index `r` is visited
            // exactly once, so each slice below is exclusively owned here.
            unsafe {
                std::slice::from_raw_parts_mut(jx.get().add(r * nx), nx).fill(0.0);
                std::slice::from_raw_parts_mut(jy.get().add(r * nx), nx).fill(0.0);
                std::slice::from_raw_parts_mut(jz.get().add(r * nx), nx).fill(0.0);
            }
        });
    }

    /// Serial reference for [`FieldArray::advance_b`]: the general wrapped
    /// per-cell loop, kept as the bit-exactness oracle (and the pre-split
    /// baseline the `repro -- field` bench measures against).
    pub fn advance_b_ref(&mut self, frac: f32) {
        let Self { grid: g, ex, ey, ez, bx, by, bz, .. } = self;
        let dt = g.dt * frac;
        let (rdx, rdy, rdz) = (1.0 / g.dx, 1.0 / g.dy, 1.0 / g.dz);
        for v in 0..g.cells() {
            let xp = g.neighbor(v, (1, 0, 0));
            let yp = g.neighbor(v, (0, 1, 0));
            let zp = g.neighbor(v, (0, 0, 1));
            bx[v] -= dt * ((ez[yp] - ez[v]) * rdy - (ey[zp] - ey[v]) * rdz);
            by[v] -= dt * ((ex[zp] - ex[v]) * rdz - (ez[xp] - ez[v]) * rdx);
            bz[v] -= dt * ((ey[xp] - ey[v]) * rdx - (ex[yp] - ex[v]) * rdy);
        }
    }

    /// Advance B by `frac·dt` with `∂B/∂t = −∇×E` (call with `0.5`
    /// before and after the E update for the leapfrog).
    pub fn advance_b(&mut self, frac: f32) {
        self.advance_b_on(&Serial, Strategy::Auto, frac);
    }

    /// [`FieldArray::advance_b`] with the row sweep distributed over
    /// `space` and the interior span vectorized per `strategy`.
    /// Bit-identical to [`FieldArray::advance_b_ref`] for every strategy,
    /// space, and worker count.
    pub fn advance_b_on<S: ExecSpace>(&mut self, space: &S, strategy: Strategy, frac: f32) {
        let Self { grid: g, ex, ey, ez, bx, by, bz, .. } = self;
        let dt = g.dt * frac;
        let (rdx, rdy, rdz) = (1.0 / g.dx, 1.0 / g.dy, 1.0 / g.dz);
        let (ex, ey, ez) = (ex.as_slice(), ey.as_slice(), ez.as_slice());
        let (sy, sz) = (g.nx, g.nx * g.ny);
        let nx = g.nx;
        let pbx = SendPtr::new(bx.as_mut_ptr());
        let pby = SendPtr::new(by.as_mut_ptr());
        let pbz = SendPtr::new(bz.as_mut_ptr());
        let g = &*g;
        space.parallel_for(g.rows(), move |r| {
            let row = g.row_range(r);
            let v0 = row.start;
            // SAFETY: rows are disjoint; this invocation exclusively owns
            // row `r`'s span of each B array.
            let (bxr, byr, bzr) = unsafe {
                (
                    std::slice::from_raw_parts_mut(pbx.get().add(v0), nx),
                    std::slice::from_raw_parts_mut(pby.get().add(v0), nx),
                    std::slice::from_raw_parts_mut(pbz.get().add(v0), nx),
                )
            };
            let inner = g.interior_xs(r, StencilSide::Plus);
            match strategy {
                Strategy::Auto => {
                    // fused plain loop: affine neighbors, left to LLVM
                    for ix in inner.clone() {
                        let v = v0 + ix;
                        bxr[ix] -= dt * ((ez[v + sy] - ez[v]) * rdy - (ey[v + sz] - ey[v]) * rdz);
                        byr[ix] -= dt * ((ex[v + sz] - ex[v]) * rdz - (ez[v + 1] - ez[v]) * rdx);
                        bzr[ix] -= dt * ((ey[v + 1] - ey[v]) * rdx - (ex[v + sy] - ex[v]) * rdy);
                    }
                }
                Strategy::Guided => {
                    // kernel splitting: one single-component pass each
                    curl_e_pass::<f32>(ez, sy, rdy, ey, sz, rdz, bxr, v0, inner.clone(), dt);
                    curl_e_pass::<f32>(ex, sz, rdz, ez, 1, rdx, byr, v0, inner.clone(), dt);
                    curl_e_pass::<f32>(ey, 1, rdx, ex, sy, rdy, bzr, v0, inner.clone(), dt);
                }
                Strategy::Manual => {
                    curl_e_pass::<SimdF32<4>>(ez, sy, rdy, ey, sz, rdz, bxr, v0, inner.clone(), dt);
                    curl_e_pass::<SimdF32<4>>(ex, sz, rdz, ez, 1, rdx, byr, v0, inner.clone(), dt);
                    curl_e_pass::<SimdF32<4>>(ey, 1, rdx, ex, sy, rdy, bzr, v0, inner.clone(), dt);
                }
                Strategy::AdHoc => {
                    curl_e_pass::<V4F32>(ez, sy, rdy, ey, sz, rdz, bxr, v0, inner.clone(), dt);
                    curl_e_pass::<V4F32>(ex, sz, rdz, ez, 1, rdx, byr, v0, inner.clone(), dt);
                    curl_e_pass::<V4F32>(ey, 1, rdx, ex, sy, rdy, bzr, v0, inner.clone(), dt);
                }
            }
            // boundary shell: general periodic path, same op tree
            for ix in (0..inner.start).chain(inner.end..nx) {
                let v = v0 + ix;
                let xp = g.neighbor(v, (1, 0, 0));
                let yp = g.neighbor(v, (0, 1, 0));
                let zp = g.neighbor(v, (0, 0, 1));
                bxr[ix] -= dt * ((ez[yp] - ez[v]) * rdy - (ey[zp] - ey[v]) * rdz);
                byr[ix] -= dt * ((ex[zp] - ex[v]) * rdz - (ez[xp] - ez[v]) * rdx);
                bzr[ix] -= dt * ((ey[xp] - ey[v]) * rdx - (ex[yp] - ex[v]) * rdy);
            }
        });
    }

    /// Advance B by `frac·dt` over the box `xs × ys × zs` only (cell
    /// coordinates, end-exclusive).
    ///
    /// Per-cell arithmetic is the wrapped op tree of
    /// [`FieldArray::advance_b_ref`] — the same tree every strategy's
    /// boundary path walks — so sweeping a disjoint partition of the grid
    /// box-by-box produces bit-identical fields to one full sweep. The
    /// multi-rank driver uses this to advance the interior while boundary
    /// shells wait on in-flight halo exchanges (DESIGN §12).
    pub fn advance_b_box(
        &mut self,
        xs: Range<usize>,
        ys: Range<usize>,
        zs: Range<usize>,
        frac: f32,
    ) {
        let Self { grid: g, ex, ey, ez, bx, by, bz, .. } = self;
        let dt = g.dt * frac;
        let (rdx, rdy, rdz) = (1.0 / g.dx, 1.0 / g.dy, 1.0 / g.dz);
        for iz in zs {
            for iy in ys.clone() {
                for ix in xs.clone() {
                    let v = g.voxel(ix, iy, iz);
                    let xp = g.neighbor(v, (1, 0, 0));
                    let yp = g.neighbor(v, (0, 1, 0));
                    let zp = g.neighbor(v, (0, 0, 1));
                    bx[v] -= dt * ((ez[yp] - ez[v]) * rdy - (ey[zp] - ey[v]) * rdz);
                    by[v] -= dt * ((ex[zp] - ex[v]) * rdz - (ez[xp] - ez[v]) * rdx);
                    bz[v] -= dt * ((ey[xp] - ey[v]) * rdx - (ex[yp] - ex[v]) * rdy);
                }
            }
        }
    }

    /// Serial reference for [`FieldArray::advance_e`] (see
    /// [`FieldArray::advance_b_ref`]).
    pub fn advance_e_ref(&mut self) {
        let Self { grid: g, ex, ey, ez, bx, by, bz, jx, jy, jz } = self;
        let dt = g.dt;
        let (rdx, rdy, rdz) = (1.0 / g.dx, 1.0 / g.dy, 1.0 / g.dz);
        for v in 0..g.cells() {
            let xm = g.neighbor(v, (-1, 0, 0));
            let ym = g.neighbor(v, (0, -1, 0));
            let zm = g.neighbor(v, (0, 0, -1));
            ex[v] += dt * ((bz[v] - bz[ym]) * rdy - (by[v] - by[zm]) * rdz - jx[v]);
            ey[v] += dt * ((bx[v] - bx[zm]) * rdz - (bz[v] - bz[xm]) * rdx - jy[v]);
            ez[v] += dt * ((by[v] - by[xm]) * rdx - (bx[v] - bx[ym]) * rdy - jz[v]);
        }
    }

    /// Advance E by a full `dt` with `∂E/∂t = ∇×B − J`.
    pub fn advance_e(&mut self) {
        self.advance_e_on(&Serial, Strategy::Auto);
    }

    /// [`FieldArray::advance_e`] with the row sweep distributed over
    /// `space` and the interior span vectorized per `strategy`.
    /// Bit-identical to [`FieldArray::advance_e_ref`] for every strategy,
    /// space, and worker count.
    pub fn advance_e_on<S: ExecSpace>(&mut self, space: &S, strategy: Strategy) {
        let Self { grid: g, ex, ey, ez, bx, by, bz, jx, jy, jz } = self;
        let dt = g.dt;
        let (rdx, rdy, rdz) = (1.0 / g.dx, 1.0 / g.dy, 1.0 / g.dz);
        let (bx, by, bz) = (bx.as_slice(), by.as_slice(), bz.as_slice());
        let (jx, jy, jz) = (jx.as_slice(), jy.as_slice(), jz.as_slice());
        let (sy, sz) = (g.nx, g.nx * g.ny);
        let nx = g.nx;
        let pex = SendPtr::new(ex.as_mut_ptr());
        let pey = SendPtr::new(ey.as_mut_ptr());
        let pez = SendPtr::new(ez.as_mut_ptr());
        let g = &*g;
        space.parallel_for(g.rows(), move |r| {
            let row = g.row_range(r);
            let v0 = row.start;
            // SAFETY: rows are disjoint; this invocation exclusively owns
            // row `r`'s span of each E array.
            let (exr, eyr, ezr) = unsafe {
                (
                    std::slice::from_raw_parts_mut(pex.get().add(v0), nx),
                    std::slice::from_raw_parts_mut(pey.get().add(v0), nx),
                    std::slice::from_raw_parts_mut(pez.get().add(v0), nx),
                )
            };
            let inner = g.interior_xs(r, StencilSide::Minus);
            match strategy {
                Strategy::Auto => {
                    for ix in inner.clone() {
                        let v = v0 + ix;
                        exr[ix] +=
                            dt * ((bz[v] - bz[v - sy]) * rdy - (by[v] - by[v - sz]) * rdz - jx[v]);
                        eyr[ix] +=
                            dt * ((bx[v] - bx[v - sz]) * rdz - (bz[v] - bz[v - 1]) * rdx - jy[v]);
                        ezr[ix] +=
                            dt * ((by[v] - by[v - 1]) * rdx - (bx[v] - bx[v - sy]) * rdy - jz[v]);
                    }
                }
                Strategy::Guided => {
                    curl_b_pass::<f32>(bz, sy, rdy, by, sz, rdz, jx, exr, v0, inner.clone(), dt);
                    curl_b_pass::<f32>(bx, sz, rdz, bz, 1, rdx, jy, eyr, v0, inner.clone(), dt);
                    curl_b_pass::<f32>(by, 1, rdx, bx, sy, rdy, jz, ezr, v0, inner.clone(), dt);
                }
                Strategy::Manual => {
                    curl_b_pass::<SimdF32<4>>(
                        bz,
                        sy,
                        rdy,
                        by,
                        sz,
                        rdz,
                        jx,
                        exr,
                        v0,
                        inner.clone(),
                        dt,
                    );
                    curl_b_pass::<SimdF32<4>>(
                        bx,
                        sz,
                        rdz,
                        bz,
                        1,
                        rdx,
                        jy,
                        eyr,
                        v0,
                        inner.clone(),
                        dt,
                    );
                    curl_b_pass::<SimdF32<4>>(
                        by,
                        1,
                        rdx,
                        bx,
                        sy,
                        rdy,
                        jz,
                        ezr,
                        v0,
                        inner.clone(),
                        dt,
                    );
                }
                Strategy::AdHoc => {
                    curl_b_pass::<V4F32>(bz, sy, rdy, by, sz, rdz, jx, exr, v0, inner.clone(), dt);
                    curl_b_pass::<V4F32>(bx, sz, rdz, bz, 1, rdx, jy, eyr, v0, inner.clone(), dt);
                    curl_b_pass::<V4F32>(by, 1, rdx, bx, sy, rdy, jz, ezr, v0, inner.clone(), dt);
                }
            }
            for ix in (0..inner.start).chain(inner.end..nx) {
                let v = v0 + ix;
                let xm = g.neighbor(v, (-1, 0, 0));
                let ym = g.neighbor(v, (0, -1, 0));
                let zm = g.neighbor(v, (0, 0, -1));
                exr[ix] += dt * ((bz[v] - bz[ym]) * rdy - (by[v] - by[zm]) * rdz - jx[v]);
                eyr[ix] += dt * ((bx[v] - bx[zm]) * rdz - (bz[v] - bz[xm]) * rdx - jy[v]);
                ezr[ix] += dt * ((by[v] - by[xm]) * rdx - (bx[v] - bx[ym]) * rdy - jz[v]);
            }
        });
    }

    /// Field energy `½∫(E² + B²)dV`, split as `(electric, magnetic)`.
    ///
    /// Summation order is per-row (voxel-major within a row, `ex² + ey² +
    /// ez²` per voxel) then rows folded in row order — the same order
    /// [`FieldArray::energies_on`] uses, so serial and parallel results
    /// are bit-identical.
    pub fn energies(&self) -> (f64, f64) {
        self.energies_on(&Serial)
    }

    /// [`FieldArray::energies`] with per-row partial sums computed in
    /// parallel, folded serially in row order. Bit-identical to the serial
    /// result for any space or worker count (a plain block-joined
    /// `parallel_reduce` would not be: its join tree depends on the
    /// partition).
    pub fn energies_on<S: ExecSpace>(&self, space: &S) -> (f64, f64) {
        let g = &self.grid;
        let rows = g.rows();
        let mut partials = vec![(0.0f64, 0.0f64); rows];
        {
            let out = SendPtr::new(partials.as_mut_ptr());
            let (ex, ey, ez) = (self.ex.as_slice(), self.ey.as_slice(), self.ez.as_slice());
            let (bx, by, bz) = (self.bx.as_slice(), self.by.as_slice(), self.bz.as_slice());
            space.parallel_for(rows, move |r| {
                let (mut e, mut b) = (0.0f64, 0.0f64);
                for v in g.row_range(r) {
                    e += (ex[v] as f64) * (ex[v] as f64);
                    e += (ey[v] as f64) * (ey[v] as f64);
                    e += (ez[v] as f64) * (ez[v] as f64);
                    b += (bx[v] as f64) * (bx[v] as f64);
                    b += (by[v] as f64) * (by[v] as f64);
                    b += (bz[v] as f64) * (bz[v] as f64);
                }
                // SAFETY: one writer per row index.
                unsafe { *out.get().add(r) = (e, b) };
            });
        }
        let cell_v = (g.dx * g.dy * g.dz) as f64;
        let (mut se, mut sb) = (0.0f64, 0.0f64);
        for (e, b) in partials {
            se += e;
            sb += b;
        }
        (0.5 * cell_v * se, 0.5 * cell_v * sb)
    }

    /// Discrete `∇·B` at the cell's node-dual (must stay ≈0 under FDTD).
    pub fn div_b(&self, v: usize) -> f32 {
        let g = &self.grid;
        let xp = g.neighbor(v, (1, 0, 0));
        let yp = g.neighbor(v, (0, 1, 0));
        let zp = g.neighbor(v, (0, 0, 1));
        (self.bx[xp] - self.bx[v]) / g.dx
            + (self.by[yp] - self.by[v]) / g.dy
            + (self.bz[zp] - self.bz[v]) / g.dz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane_wave(n: usize) -> FieldArray {
        // +x-travelling wave: Ez = sin(kx), By = -sin(kx) at the staggered
        // positions (ez at node-x, by at x+1/2)
        let g = Grid::new(n, 4, 4);
        let mut f = FieldArray::new(g.clone());
        let k = 2.0 * std::f32::consts::PI / n as f32;
        for v in 0..g.cells() {
            let (ix, _, _) = g.coords(v);
            f.ez[v] = (k * ix as f32).sin();
            f.by[v] = -(k * (ix as f32 + 0.5)).sin();
        }
        f
    }

    fn total_energy(f: &FieldArray) -> f64 {
        let (e, b) = f.energies();
        e + b
    }

    /// Deterministic non-trivial field state for bit-identity checks.
    fn scrambled(g: &Grid) -> FieldArray {
        let mut f = FieldArray::new(g.clone());
        for v in 0..g.cells() {
            let x = v as f32;
            f.ex[v] = (x * 0.618).sin();
            f.ey[v] = (x * 0.414).cos();
            f.ez[v] = (x * 0.732).sin() - 0.3;
            f.bx[v] = (x * 0.271).cos() * 0.5;
            f.by[v] = (x * 0.161).sin() + 0.1;
            f.bz[v] = (x * 0.577).cos() - 0.2;
            f.jx[v] = (x * 0.321).sin() * 0.05;
            f.jy[v] = (x * 0.123).cos() * 0.05;
            f.jz[v] = (x * 0.913).sin() * 0.05;
        }
        f
    }

    #[test]
    fn vacuum_plane_wave_conserves_energy() {
        let mut f = plane_wave(32);
        let e0 = total_energy(&f);
        assert!(e0 > 0.0);
        // leapfrog: half B, then (E, full B) pairs
        f.advance_b(0.5);
        for _ in 0..200 {
            f.advance_e();
            f.advance_b(1.0);
        }
        f.advance_b(-0.5); // resync B to integer time for the energy check
        let e1 = total_energy(&f);
        let drift = ((e1 - e0) / e0).abs();
        assert!(drift < 0.02, "vacuum energy drift {drift}");
    }

    #[test]
    fn vacuum_wave_propagates_in_x() {
        let n = 64;
        let mut f = plane_wave(n);
        let probe = |f: &FieldArray| f.ez[f.grid.voxel(0, 0, 0)];
        let initial = probe(&f);
        assert_eq!(initial, 0.0); // sin(0)
        // advance a quarter period: T = wavelength / c = 64 steps of dt... use
        // enough steps that the phase visibly moves
        f.advance_b(0.5);
        let steps = (n as f32 / (4.0 * f.grid.dt)) as usize;
        for _ in 0..steps {
            f.advance_e();
            f.advance_b(1.0);
        }
        assert!(
            probe(&f).abs() > 0.5,
            "wave should have moved a quarter period: {}",
            probe(&f)
        );
    }

    #[test]
    fn div_b_stays_zero() {
        let mut f = plane_wave(16);
        f.advance_b(0.5);
        for _ in 0..50 {
            f.advance_e();
            f.advance_b(1.0);
        }
        for v in 0..f.grid.cells() {
            assert!(f.div_b(v).abs() < 1e-4, "div B at {v}: {}", f.div_b(v));
        }
    }

    #[test]
    fn uniform_current_drives_e_linearly() {
        let g = Grid::new(8, 8, 8);
        let dt = g.dt;
        let mut f = FieldArray::new(g);
        f.jx.fill(1.0);
        f.advance_e();
        assert!(f.ex.iter().all(|&e| (e + dt).abs() < 1e-6), "E = -J dt");
        assert!(f.ey.iter().all(|&e| e == 0.0));
    }

    #[test]
    fn clear_j_zeroes_currents_only() {
        let g = Grid::new(4, 4, 4);
        let mut f = FieldArray::new(g);
        f.jx.fill(2.0);
        f.ex.fill(3.0);
        f.clear_j();
        assert!(f.jx.iter().all(|&x| x == 0.0));
        assert!(f.ex.iter().all(|&x| x == 3.0));
    }

    #[test]
    fn static_uniform_b_is_a_fixed_point() {
        let g = Grid::new(6, 6, 6);
        let mut f = FieldArray::new(g);
        f.bz.fill(1.5);
        let before = f.clone();
        f.advance_b(0.5);
        f.advance_e();
        f.advance_b(1.0);
        assert_eq!(f.bz, before.bz);
        assert!(f.ex.iter().all(|&e| e == 0.0));
    }

    #[test]
    fn split_kernels_match_reference_bitwise() {
        let threads = pk::Threads::new(3);
        for (nx, ny, nz) in [(7, 5, 4), (4, 4, 4), (2, 2, 2), (1, 5, 5), (8, 1, 3), (1, 1, 1)] {
            let g = Grid::new(nx, ny, nz);
            let base = scrambled(&g);
            let mut reference = base.clone();
            reference.advance_b_ref(0.5);
            reference.advance_e_ref();
            reference.advance_b_ref(0.5);
            for strategy in Strategy::ALL {
                let mut serial = base.clone();
                serial.advance_b_on(&Serial, strategy, 0.5);
                serial.advance_e_on(&Serial, strategy);
                serial.advance_b_on(&Serial, strategy, 0.5);
                let mut parallel = base.clone();
                parallel.advance_b_on(&threads, strategy, 0.5);
                parallel.advance_e_on(&threads, strategy);
                parallel.advance_b_on(&threads, strategy, 0.5);
                for (name, r, s, p) in [
                    ("ex", &reference.ex, &serial.ex, &parallel.ex),
                    ("ey", &reference.ey, &serial.ey, &parallel.ey),
                    ("ez", &reference.ez, &serial.ez, &parallel.ez),
                    ("bx", &reference.bx, &serial.bx, &parallel.bx),
                    ("by", &reference.by, &serial.by, &parallel.by),
                    ("bz", &reference.bz, &serial.bz, &parallel.bz),
                ] {
                    for v in 0..g.cells() {
                        assert_eq!(
                            r[v].to_bits(),
                            s[v].to_bits(),
                            "{name}[{v}] {strategy:?} serial vs ref ({nx},{ny},{nz})"
                        );
                        assert_eq!(
                            r[v].to_bits(),
                            p[v].to_bits(),
                            "{name}[{v}] {strategy:?} threads vs ref ({nx},{ny},{nz})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn box_partition_matches_full_sweep_bitwise() {
        // interior box + the three plus-face shells = the multi-rank
        // overlap split; together they must reproduce the full sweep
        for (nx, ny, nz) in [(6, 5, 4), (1, 4, 4), (4, 1, 1), (1, 1, 1)] {
            let g = Grid::new(nx, ny, nz);
            let mut full = scrambled(&g);
            full.advance_b(0.5);
            let mut boxed = scrambled(&g);
            boxed.advance_b_box(0..nx.saturating_sub(1), 0..ny.saturating_sub(1), 0..nz.saturating_sub(1), 0.5);
            boxed.advance_b_box(nx - 1..nx, 0..ny, 0..nz, 0.5);
            boxed.advance_b_box(0..nx - 1, ny - 1..ny, 0..nz, 0.5);
            boxed.advance_b_box(0..nx - 1, 0..ny - 1, nz - 1..nz, 0.5);
            for v in 0..g.cells() {
                assert_eq!(full.bx[v].to_bits(), boxed.bx[v].to_bits(), "bx[{v}] ({nx},{ny},{nz})");
                assert_eq!(full.by[v].to_bits(), boxed.by[v].to_bits(), "by[{v}] ({nx},{ny},{nz})");
                assert_eq!(full.bz[v].to_bits(), boxed.bz[v].to_bits(), "bz[{v}] ({nx},{ny},{nz})");
            }
        }
    }

    #[test]
    fn energies_deterministic_across_spaces() {
        let g = Grid::new(6, 5, 4);
        let f = scrambled(&g);
        let serial = f.energies();
        for workers in [1, 2, 3, 4, 7] {
            let threads = pk::Threads::new(workers);
            let par = f.energies_on(&threads);
            assert_eq!(serial.0.to_bits(), par.0.to_bits(), "{workers} workers");
            assert_eq!(serial.1.to_bits(), par.1.to_bits(), "{workers} workers");
        }
    }

    #[test]
    fn clear_j_on_matches_serial() {
        let g = Grid::new(5, 3, 2);
        let mut f = scrambled(&g);
        let threads = pk::Threads::new(2);
        f.clear_j_on(&threads);
        assert!(f.jx.iter().chain(&f.jy).chain(&f.jz).all(|&x| x == 0.0));
        assert!(f.ex.iter().any(|&x| x != 0.0), "E untouched");
    }
}
