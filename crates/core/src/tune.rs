//! The simulation side of the adaptive tuner: epoch bookkeeping around
//! [`crate::Simulation::step_on`].
//!
//! The [`tuner::Tuner`] state machine is pure — it only sees
//! [`tuner::Measurement`]s and returns [`tuner::Config`]s. This driver
//! owns the loop that feeds it: it counts an epoch's steps, pushes,
//! crossings and sort time; reads a [`telemetry`] window per epoch to
//! detect dropped events (a truncated window would silently undercount an
//! arm's cost, so the tuner re-measures instead); and applies the next
//! configuration *between* steps, never inside one. Every applied config
//! is recorded in [`TuneDriver::schedule`] with the step it took effect
//! at — replaying that schedule through
//! [`crate::Simulation::apply_tune_config`] on an identical deck
//! reproduces the tuned run's physics bit-for-bit (property-tested in
//! `tests/adaptive_tuning.rs`).

use crate::push::PushStats;
use crate::sim::Simulation;
use tuner::{Config, Measurement, Tuner, TunerState};

/// One line of the tuned run's configuration history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// Step count at which the config was applied (it governs this step
    /// and onward, until the next entry).
    pub step: u64,
    /// The configuration applied.
    pub config: Config,
    /// Worker count the scatter accumulator was sized for.
    pub workers: usize,
}

/// Per-epoch accumulators, reset at every epoch boundary.
#[derive(Debug, Clone, Copy, Default)]
struct EpochAcc {
    steps: u64,
    pushed: u64,
    crossings: u64,
    step_ns: u64,
    sort_ns: u64,
    sorts: u64,
}

/// The serializable state of a [`TuneDriver`]: the engine state plus the
/// driver's epoch accumulators and recorded schedule. What it does *not*
/// carry is the open [`telemetry::WindowMark`] — marks are positions in
/// this process's telemetry stream and mean nothing in another process,
/// so a restored driver starts its next epoch with a fresh mark (the
/// first post-restore epoch simply cannot detect dropped events from
/// before the restore, which is sound: those events are gone anyway).
#[derive(Debug, Clone, PartialEq)]
pub struct DriverState {
    /// The pure engine's state.
    pub tuner: TunerState,
    /// Steps folded into the current (incomplete) epoch.
    pub acc_steps: u64,
    /// Particles pushed in the current epoch.
    pub acc_pushed: u64,
    /// Cell crossings in the current epoch.
    pub acc_crossings: u64,
    /// Wall time of the current epoch's steps, ns.
    pub acc_step_ns: u64,
    /// Wall time the current epoch spent sorting, ns.
    pub acc_sort_ns: u64,
    /// Sorts that fired in the current epoch.
    pub acc_sorts: u64,
    /// The recorded `(step, config, workers)` history.
    pub schedule: Vec<ScheduleEntry>,
    /// Completed measurement epochs.
    pub epochs: u64,
    /// Whether the first arm has been applied yet.
    pub started: bool,
}

/// Drives a [`Tuner`] from inside the simulation loop. Arm it with
/// [`crate::Simulation::set_tuner`].
#[derive(Debug)]
pub struct TuneDriver {
    tuner: Tuner,
    acc: EpochAcc,
    mark: Option<telemetry::WindowMark>,
    schedule: Vec<ScheduleEntry>,
    epochs: u64,
    started: bool,
}

impl TuneDriver {
    /// Wrap a configured tuner.
    pub fn new(tuner: Tuner) -> Self {
        Self {
            tuner,
            acc: EpochAcc::default(),
            mark: None,
            schedule: Vec::new(),
            epochs: 0,
            started: false,
        }
    }

    /// The underlying state machine (phase, committed arm, best cost…).
    pub fn tuner(&self) -> &Tuner {
        &self.tuner
    }

    /// Completed measurement epochs.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The config history: which arm governed the run from which step.
    /// Replaying these through [`Simulation::apply_tune_config`] at the
    /// recorded steps reproduces the tuned run exactly.
    pub fn schedule(&self) -> &[ScheduleEntry] {
        &self.schedule
    }

    /// Export the driver's complete serializable state (the open
    /// telemetry window mark excluded — see [`DriverState`]).
    pub fn state(&self) -> DriverState {
        DriverState {
            tuner: self.tuner.state(),
            acc_steps: self.acc.steps,
            acc_pushed: self.acc.pushed,
            acc_crossings: self.acc.crossings,
            acc_step_ns: self.acc.step_ns,
            acc_sort_ns: self.acc.sort_ns,
            acc_sorts: self.acc.sorts,
            schedule: self.schedule.clone(),
            epochs: self.epochs,
            started: self.started,
        }
    }

    /// Rebuild a driver from checkpointed state, resuming the recorded
    /// schedule and the in-flight epoch exactly where they stopped. The
    /// engine state is validated (see [`Tuner::from_state`]); the first
    /// epoch boundary after the restore reads a window opened post-restore.
    pub fn from_state(s: DriverState) -> Result<Self, String> {
        let tuner = Tuner::from_state(s.tuner)?;
        Ok(Self {
            tuner,
            acc: EpochAcc {
                steps: s.acc_steps,
                pushed: s.acc_pushed,
                crossings: s.acc_crossings,
                step_ns: s.acc_step_ns,
                sort_ns: s.acc_sort_ns,
                sorts: s.acc_sorts,
            },
            mark: None,
            schedule: s.schedule,
            epochs: s.epochs,
            started: s.started,
        })
    }

    /// Epoch bookkeeping before a step runs: on the first call, apply the
    /// first candidate; on epoch boundaries, score the finished epoch and
    /// apply whatever the tuner says to run next.
    ///
    /// Public so external steppers (e.g. the multi-rank driver, which
    /// bypasses [`Simulation::step_on`]) can run their own per-rank
    /// tuning loop with the same bookkeeping.
    pub fn before_step(&mut self, sim: &mut Simulation, workers: usize) {
        if !self.started {
            self.started = true;
            let cfg = *self.tuner.current();
            self.apply(sim, cfg, workers);
            self.mark = Some(telemetry::window_mark());
            return;
        }
        if self.acc.steps < self.tuner.epoch_steps() as u64 {
            return;
        }
        // the epoch is complete: check its telemetry window for dropped
        // events before trusting the numbers
        let truncated = match self.mark.take() {
            Some(m) => telemetry::window_since(&m).dropped_events > 0,
            None => false,
        };
        if truncated {
            telemetry::count("tuner.truncated_epochs", 1);
        }
        let m = Measurement {
            steps: self.acc.steps,
            pushed: self.acc.pushed,
            crossings: self.acc.crossings,
            step_ns: self.acc.step_ns,
            sort_ns: self.acc.sort_ns,
            sorts: self.acc.sorts,
            truncated,
        };
        let prev = *self.tuner.current();
        let next = self.tuner.finish_epoch(&m);
        self.epochs += 1;
        if next != prev {
            self.apply(sim, next, workers);
        }
        self.acc = EpochAcc::default();
        self.mark = Some(telemetry::window_mark());
    }

    /// Fold one step's observations into the current epoch.
    pub fn after_step(
        &mut self,
        stats: &PushStats,
        step_ns: u64,
        sort_ns: u64,
        sort_fired: bool,
    ) {
        self.acc.steps += 1;
        self.acc.pushed += stats.pushed as u64;
        self.acc.crossings += stats.crossings as u64;
        self.acc.step_ns += step_ns;
        self.acc.sort_ns += sort_ns;
        self.acc.sorts += u64::from(sort_fired);
    }

    fn apply(&mut self, sim: &mut Simulation, cfg: Config, workers: usize) {
        sim.apply_tune_config(&cfg, workers);
        self.schedule.push(ScheduleEntry { step: sim.step_count(), config: cfg, workers });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deck::Deck;
    use pk::atomic::ScatterMode;
    use psort::SortOrder;
    use vsimd::Strategy;

    fn small_arms() -> Vec<Config> {
        vec![
            Config::unsorted(Strategy::Auto, ScatterMode::Atomic),
            Config {
                order: Some(SortOrder::Standard),
                interval: 5,
                strategy: Strategy::Auto,
                scatter: ScatterMode::Atomic,
                tile: None,
            },
            Config {
                order: Some(SortOrder::Strided),
                interval: 5,
                strategy: Strategy::Manual,
                scatter: ScatterMode::Atomic,
                tile: None,
            },
        ]
    }

    #[test]
    fn driver_walks_epochs_and_records_the_schedule() {
        let mut sim = Deck::weibel(6, 6, 6, 4, 0.3).build();
        sim.set_tuner(TuneDriver::new(Tuner::new(small_arms(), 3)));
        // 3 arms × 3-step epochs: 9 steps of exploration, then commit
        sim.run(12);
        let d = sim.take_tuner().expect("driver still armed");
        assert!(d.epochs() >= 3, "3 exploration epochs must have closed: {}", d.epochs());
        assert_eq!(d.tuner().phase(), tuner::Phase::Committed);
        assert!(d.tuner().committed().is_some());
        let sched = d.schedule();
        assert!(!sched.is_empty());
        assert_eq!(sched[0].step, 0, "first arm applies before the first step");
        assert_eq!(sched[0].config, small_arms()[0]);
        // entries are strictly ordered by step and aligned to epochs
        assert!(sched.windows(2).all(|w| w[0].step < w[1].step));
        for e in &sched[1..] {
            assert_eq!(e.step % 3, 0, "configs only swap at epoch boundaries: {e:?}");
        }
        // the sim ends up running the committed arm
        let committed = *d.tuner().committed().unwrap();
        assert_eq!(sim.strategy, committed.strategy);
        assert_eq!(sim.sort_order, committed.order);
    }

    #[test]
    fn driver_state_round_trip_resumes_the_schedule() {
        let mut sim = Deck::weibel(6, 6, 6, 4, 0.3).build();
        sim.set_tuner(TuneDriver::new(Tuner::new(small_arms(), 3)));
        sim.run(5); // mid-epoch: one arm scored, the next one in flight
        let d = sim.take_tuner().unwrap();
        let resumed = TuneDriver::from_state(d.state()).expect("valid state");
        assert_eq!(resumed.state(), d.state());
        assert_eq!(resumed.schedule(), d.schedule());
        assert_eq!(resumed.epochs(), d.epochs());
        // the restored driver keeps driving: re-arm and finish the run
        sim.set_tuner(resumed);
        sim.run(7);
        let d = sim.take_tuner().unwrap();
        assert_eq!(d.tuner().phase(), tuner::Phase::Committed);
        // the schedule stays one continuous, strictly ordered history
        assert!(d.schedule().windows(2).all(|w| w[0].step < w[1].step));
    }

    #[test]
    fn unarmed_simulation_is_unaffected() {
        let mut a = Deck::weibel(6, 6, 6, 4, 0.3).build();
        let mut b = Deck::weibel(6, 6, 6, 4, 0.3).build();
        a.run(5);
        b.run(5);
        assert!(a.tuner().is_none());
        for (sa, sb) in a.species.iter().zip(&b.species) {
            assert_eq!(sa.cell, sb.cell);
            assert_eq!(sa.ux, sb.ux);
        }
    }
}
