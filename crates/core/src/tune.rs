//! The simulation side of the adaptive tuner: epoch bookkeeping around
//! [`crate::Simulation::step_on`].
//!
//! The [`tuner::Tuner`] state machine is pure — it only sees
//! [`tuner::Measurement`]s and returns [`tuner::Config`]s. This driver
//! owns the loop that feeds it: it counts an epoch's steps, pushes,
//! crossings and sort time; reads a [`telemetry`] window per epoch to
//! detect dropped events (a truncated window would silently undercount an
//! arm's cost, so the tuner re-measures instead); and applies the next
//! configuration *between* steps, never inside one. Every applied config
//! is recorded in [`TuneDriver::schedule`] with the step it took effect
//! at — replaying that schedule through
//! [`crate::Simulation::apply_tune_config`] on an identical deck
//! reproduces the tuned run's physics bit-for-bit (property-tested in
//! `tests/adaptive_tuning.rs`).

use crate::push::PushStats;
use crate::sim::Simulation;
use tuner::{Config, Measurement, Tuner};

/// One line of the tuned run's configuration history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// Step count at which the config was applied (it governs this step
    /// and onward, until the next entry).
    pub step: u64,
    /// The configuration applied.
    pub config: Config,
    /// Worker count the scatter accumulator was sized for.
    pub workers: usize,
}

/// Per-epoch accumulators, reset at every epoch boundary.
#[derive(Debug, Clone, Copy, Default)]
struct EpochAcc {
    steps: u64,
    pushed: u64,
    crossings: u64,
    step_ns: u64,
    sort_ns: u64,
    sorts: u64,
}

/// Drives a [`Tuner`] from inside the simulation loop. Arm it with
/// [`crate::Simulation::set_tuner`].
#[derive(Debug)]
pub struct TuneDriver {
    tuner: Tuner,
    acc: EpochAcc,
    mark: Option<telemetry::WindowMark>,
    schedule: Vec<ScheduleEntry>,
    epochs: u64,
    started: bool,
}

impl TuneDriver {
    /// Wrap a configured tuner.
    pub fn new(tuner: Tuner) -> Self {
        Self {
            tuner,
            acc: EpochAcc::default(),
            mark: None,
            schedule: Vec::new(),
            epochs: 0,
            started: false,
        }
    }

    /// The underlying state machine (phase, committed arm, best cost…).
    pub fn tuner(&self) -> &Tuner {
        &self.tuner
    }

    /// Completed measurement epochs.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The config history: which arm governed the run from which step.
    /// Replaying these through [`Simulation::apply_tune_config`] at the
    /// recorded steps reproduces the tuned run exactly.
    pub fn schedule(&self) -> &[ScheduleEntry] {
        &self.schedule
    }

    /// Epoch bookkeeping before a step runs: on the first call, apply the
    /// first candidate; on epoch boundaries, score the finished epoch and
    /// apply whatever the tuner says to run next.
    pub(crate) fn before_step(&mut self, sim: &mut Simulation, workers: usize) {
        if !self.started {
            self.started = true;
            let cfg = *self.tuner.current();
            self.apply(sim, cfg, workers);
            self.mark = Some(telemetry::window_mark());
            return;
        }
        if self.acc.steps < self.tuner.epoch_steps() as u64 {
            return;
        }
        // the epoch is complete: check its telemetry window for dropped
        // events before trusting the numbers
        let truncated = match self.mark.take() {
            Some(m) => telemetry::window_since(&m).dropped_events > 0,
            None => false,
        };
        if truncated {
            telemetry::count("tuner.truncated_epochs", 1);
        }
        let m = Measurement {
            steps: self.acc.steps,
            pushed: self.acc.pushed,
            crossings: self.acc.crossings,
            step_ns: self.acc.step_ns,
            sort_ns: self.acc.sort_ns,
            sorts: self.acc.sorts,
            truncated,
        };
        let prev = *self.tuner.current();
        let next = self.tuner.finish_epoch(&m);
        self.epochs += 1;
        if next != prev {
            self.apply(sim, next, workers);
        }
        self.acc = EpochAcc::default();
        self.mark = Some(telemetry::window_mark());
    }

    /// Fold one step's observations into the current epoch.
    pub(crate) fn after_step(
        &mut self,
        stats: &PushStats,
        step_ns: u64,
        sort_ns: u64,
        sort_fired: bool,
    ) {
        self.acc.steps += 1;
        self.acc.pushed += stats.pushed as u64;
        self.acc.crossings += stats.crossings as u64;
        self.acc.step_ns += step_ns;
        self.acc.sort_ns += sort_ns;
        self.acc.sorts += u64::from(sort_fired);
    }

    fn apply(&mut self, sim: &mut Simulation, cfg: Config, workers: usize) {
        sim.apply_tune_config(&cfg, workers);
        self.schedule.push(ScheduleEntry { step: sim.step_count(), config: cfg, workers });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deck::Deck;
    use pk::atomic::ScatterMode;
    use psort::SortOrder;
    use vsimd::Strategy;

    fn small_arms() -> Vec<Config> {
        vec![
            Config::unsorted(Strategy::Auto, ScatterMode::Atomic),
            Config {
                order: Some(SortOrder::Standard),
                interval: 5,
                strategy: Strategy::Auto,
                scatter: ScatterMode::Atomic,
            },
            Config {
                order: Some(SortOrder::Strided),
                interval: 5,
                strategy: Strategy::Manual,
                scatter: ScatterMode::Atomic,
            },
        ]
    }

    #[test]
    fn driver_walks_epochs_and_records_the_schedule() {
        let mut sim = Deck::weibel(6, 6, 6, 4, 0.3).build();
        sim.set_tuner(TuneDriver::new(Tuner::new(small_arms(), 3)));
        // 3 arms × 3-step epochs: 9 steps of exploration, then commit
        sim.run(12);
        let d = sim.take_tuner().expect("driver still armed");
        assert!(d.epochs() >= 3, "3 exploration epochs must have closed: {}", d.epochs());
        assert_eq!(d.tuner().phase(), tuner::Phase::Committed);
        assert!(d.tuner().committed().is_some());
        let sched = d.schedule();
        assert!(!sched.is_empty());
        assert_eq!(sched[0].step, 0, "first arm applies before the first step");
        assert_eq!(sched[0].config, small_arms()[0]);
        // entries are strictly ordered by step and aligned to epochs
        assert!(sched.windows(2).all(|w| w[0].step < w[1].step));
        for e in &sched[1..] {
            assert_eq!(e.step % 3, 0, "configs only swap at epoch boundaries: {e:?}");
        }
        // the sim ends up running the committed arm
        let committed = *d.tuner().committed().unwrap();
        assert_eq!(sim.strategy, committed.strategy);
        assert_eq!(sim.sort_order, committed.order);
    }

    #[test]
    fn unarmed_simulation_is_unaffected() {
        let mut a = Deck::weibel(6, 6, 6, 4, 0.3).build();
        let mut b = Deck::weibel(6, 6, 6, 4, 0.3).build();
        a.run(5);
        b.run(5);
        assert!(a.tuner().is_none());
        for (sa, sb) in a.species.iter().zip(&b.species) {
            assert_eq!(sa.cell, sb.cell);
            assert_eq!(sa.ux, sb.ux);
        }
    }
}
