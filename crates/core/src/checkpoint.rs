//! Deterministic checkpoint/restart for [`Simulation`] (DESIGN §10).
//!
//! A checkpoint is a [`ckpt`] container holding everything that feeds the
//! next step's arithmetic: grid geometry, the nine field arrays, every
//! species' SoA particle arrays and `last_sort` skip-cache claim, the
//! scalar loop state (step count, sort cadence phase, strategy, scatter
//! mode *and replica count* — replica count changes deposition summation
//! order, which is bit-visible), the armed [`TuneDriver`]'s full state,
//! lifetime telemetry counter totals, and an energy ledger used as an
//! end-to-end cross-check on restore. Restoring on the same build and
//! stepping produces bit-identical physics to the uninterrupted run
//! (property-tested in `tests/checkpoint_restart.rs`).
//!
//! What is deliberately *not* serialized: per-species sort scratch
//! (re-warms on the first post-restore sort), the accumulator (rebuilt
//! via [`Simulation::configure_scatter`] from the saved worker count),
//! and the tuner's open telemetry window mark (positions in a dead
//! process's stream — see [`crate::tune::DriverState`]).
//!
//! Every decode error is typed ([`RestoreError`]); a checkpoint that
//! parses but disagrees with itself (array length mismatch, unknown enum
//! tag, energy ledger that does not match the restored state) is
//! [`RestoreError::SchemaDrift`], never a silently wrong simulation.

use std::io::{Read, Write};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::Path;

use crate::grid::Grid;
use crate::push::PushStats;
use crate::sim::{LaserDriver, Simulation};
use crate::species::Species;
use crate::tile::TilePolicy;
use crate::tune::{DriverState, ScheduleEntry, TuneDriver};
use ckpt::{RestoreError, SectionBuf, SectionReader, Snapshot, Writer};
use pk::atomic::ScatterMode;
use pk::{DispatchPanic, ExecSpace, Serial};
use psort::SortOrder;
use tuner::{Config, Phase, TileCfg, TunerState};
use vsimd::Strategy;

/// A step failed in a recoverable way. The simulation state is
/// unspecified after an error (the step was torn mid-flight): discard the
/// [`Simulation`] and restore from the last good checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepError {
    /// Worker-pool lanes panicked during a dispatched push
    /// (see [`pk::DispatchPanic`]).
    WorkerPanic {
        /// How many lanes died.
        panicked_lanes: usize,
    },
    /// The simulation claims to be tiled but its [`crate::TileEngine`]
    /// is gone — a torn tiling invariant from a malformed or
    /// half-applied configuration. The particle population may be
    /// unreachable; discard the simulation and restore from the last
    /// good checkpoint.
    TileEngineMissing,
}

impl std::fmt::Display for StepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::WorkerPanic { panicked_lanes } => {
                write!(f, "step aborted: {panicked_lanes} worker lane(s) panicked")
            }
            Self::TileEngineMissing => {
                write!(f, "step aborted: simulation is tiled but the tile engine is missing")
            }
        }
    }
}

impl std::error::Error for StepError {}

// ------------------------------------------------------------- enum tags

fn strategy_tag(s: Strategy) -> u8 {
    match s {
        Strategy::Auto => 0,
        Strategy::Guided => 1,
        Strategy::Manual => 2,
        Strategy::AdHoc => 3,
    }
}

fn strategy_from(tag: u8) -> Result<Strategy, RestoreError> {
    Ok(match tag {
        0 => Strategy::Auto,
        1 => Strategy::Guided,
        2 => Strategy::Manual,
        3 => Strategy::AdHoc,
        t => return Err(RestoreError::SchemaDrift(format!("unknown strategy tag {t}"))),
    })
}

fn scatter_tag(m: ScatterMode) -> u8 {
    match m {
        ScatterMode::Atomic => 0,
        ScatterMode::Duplicated => 1,
    }
}

fn scatter_from(tag: u8) -> Result<ScatterMode, RestoreError> {
    Ok(match tag {
        0 => ScatterMode::Atomic,
        1 => ScatterMode::Duplicated,
        t => return Err(RestoreError::SchemaDrift(format!("unknown scatter tag {t}"))),
    })
}

fn phase_tag(p: Phase) -> u8 {
    match p {
        Phase::Exploring => 0,
        Phase::Refining => 1,
        Phase::Committed => 2,
    }
}

fn phase_from(tag: u8) -> Result<Phase, RestoreError> {
    Ok(match tag {
        0 => Phase::Exploring,
        1 => Phase::Refining,
        2 => Phase::Committed,
        t => return Err(RestoreError::SchemaDrift(format!("unknown phase tag {t}"))),
    })
}

fn put_order(b: &mut SectionBuf, order: Option<SortOrder>) {
    match order {
        None => b.put_u8(0),
        Some(SortOrder::Random) => b.put_u8(1),
        Some(SortOrder::Standard) => b.put_u8(2),
        Some(SortOrder::Strided) => b.put_u8(3),
        Some(SortOrder::TiledStrided { tile }) => {
            b.put_u8(4);
            b.put_usize(tile);
        }
    }
}

fn get_order(r: &mut SectionReader<'_>) -> Result<Option<SortOrder>, RestoreError> {
    Ok(match r.get_u8()? {
        0 => None,
        1 => Some(SortOrder::Random),
        2 => Some(SortOrder::Standard),
        3 => Some(SortOrder::Strided),
        4 => Some(SortOrder::TiledStrided { tile: r.get_usize()? }),
        t => return Err(RestoreError::SchemaDrift(format!("unknown sort-order tag {t}"))),
    })
}

fn put_config(b: &mut SectionBuf, c: &Config) {
    put_order(b, c.order);
    b.put_usize(c.interval);
    b.put_u8(strategy_tag(c.strategy));
    b.put_u8(scatter_tag(c.scatter));
    match c.tile {
        None => b.put_bool(false),
        Some(t) => {
            b.put_bool(true);
            b.put_usize(t.tile_cells);
            b.put_bool(t.compress);
        }
    }
}

fn get_config(r: &mut SectionReader<'_>) -> Result<Config, RestoreError> {
    Ok(Config {
        order: get_order(r)?,
        interval: r.get_usize()?,
        strategy: strategy_from(r.get_u8()?)?,
        scatter: scatter_from(r.get_u8()?)?,
        tile: if r.get_bool()? {
            Some(TileCfg { tile_cells: r.get_usize()?, compress: r.get_bool()? })
        } else {
            None
        },
    })
}

// ---------------------------------------------------------- tuner state

fn put_driver_state(b: &mut SectionBuf, d: &DriverState) {
    let t: &TunerState = &d.tuner;
    b.put_usize(t.arms.len());
    for arm in &t.arms {
        put_config(b, arm);
    }
    b.put_usize(t.epoch_steps);
    b.put_u8(phase_tag(t.phase));
    b.put_usize(t.cursor);
    for cost in &t.costs {
        b.put_bool(cost.is_some());
        b.put_f64(cost.unwrap_or(0.0));
    }
    b.put_f64s(&t.rates);
    b.put_f64(t.committed_cost);
    b.put_f64(t.baseline_rate);
    b.put_f64(t.rate_ewma);
    b.put_usize(t.refine_top);
    b.put_usize(t.refine_queue.len());
    for &i in &t.refine_queue {
        b.put_usize(i);
    }
    b.put_u32(t.retries);
    b.put_u64(t.truncated_epochs);
    b.put_u64(t.explorations);
    b.put_u64(d.acc_steps);
    b.put_u64(d.acc_pushed);
    b.put_u64(d.acc_crossings);
    b.put_u64(d.acc_step_ns);
    b.put_u64(d.acc_sort_ns);
    b.put_u64(d.acc_sorts);
    b.put_usize(d.schedule.len());
    for e in &d.schedule {
        b.put_u64(e.step);
        put_config(b, &e.config);
        b.put_usize(e.workers);
    }
    b.put_u64(d.epochs);
    b.put_bool(d.started);
}

fn get_driver_state(r: &mut SectionReader<'_>) -> Result<DriverState, RestoreError> {
    let n_arms = r.get_usize()?;
    let mut arms = Vec::new();
    for _ in 0..n_arms {
        arms.push(get_config(r)?);
    }
    let epoch_steps = r.get_usize()?;
    let phase = phase_from(r.get_u8()?)?;
    let cursor = r.get_usize()?;
    let mut costs = Vec::new();
    for _ in 0..n_arms {
        let present = r.get_bool()?;
        let v = r.get_f64()?;
        costs.push(present.then_some(v));
    }
    let rates = r.get_f64s()?;
    let committed_cost = r.get_f64()?;
    let baseline_rate = r.get_f64()?;
    let rate_ewma = r.get_f64()?;
    let refine_top = r.get_usize()?;
    let n_queue = r.get_usize()?;
    let mut refine_queue = Vec::new();
    for _ in 0..n_queue {
        refine_queue.push(r.get_usize()?);
    }
    let retries = r.get_u32()?;
    let truncated_epochs = r.get_u64()?;
    let explorations = r.get_u64()?;
    let tuner = TunerState {
        arms,
        epoch_steps,
        phase,
        cursor,
        costs,
        rates,
        committed_cost,
        baseline_rate,
        rate_ewma,
        refine_top,
        refine_queue,
        retries,
        truncated_epochs,
        explorations,
    };
    let acc_steps = r.get_u64()?;
    let acc_pushed = r.get_u64()?;
    let acc_crossings = r.get_u64()?;
    let acc_step_ns = r.get_u64()?;
    let acc_sort_ns = r.get_u64()?;
    let acc_sorts = r.get_u64()?;
    let n_sched = r.get_usize()?;
    let mut schedule = Vec::new();
    for _ in 0..n_sched {
        schedule.push(ScheduleEntry {
            step: r.get_u64()?,
            config: get_config(r)?,
            workers: r.get_usize()?,
        });
    }
    let epochs = r.get_u64()?;
    let started = r.get_bool()?;
    Ok(DriverState {
        tuner,
        acc_steps,
        acc_pushed,
        acc_crossings,
        acc_step_ns,
        acc_sort_ns,
        acc_sorts,
        schedule,
        epochs,
        started,
    })
}

// ------------------------------------------------------------ write path

impl Simulation {
    /// Build the checkpoint container for the current state.
    ///
    /// Tiled simulations are handled transparently: the engine is
    /// drained into the canonical particle layout (an exact round trip —
    /// ids are canonical, so untile→retile is bit-lossless), the
    /// snapshot is taken untiled, the tile policy is recorded in a
    /// `tiling` section, and tiling is re-enabled before returning.
    /// [`Simulation::restore_from_snapshot`] re-enables tiling from the
    /// recorded policy, so a preempted tiled job resumes tiled.
    pub fn checkpoint_writer(&mut self) -> Writer {
        let tile_policy = self.tile_engine().map(|e| e.policy().clone());
        if tile_policy.is_some() {
            let _s = telemetry::span("ckpt.untile").arg("step", self.step);
            self.disable_tiling();
        }
        let mut w = self.checkpoint_writer_canonical();
        if let Some(policy) = tile_policy {
            let t = w.section("tiling");
            t.put_usize(policy.tile_cells);
            t.put_bool(policy.compress);
            t.put_usize(policy.max_hot);
            match &policy.spill_dir {
                None => t.put_bool(false),
                Some(dir) => {
                    t.put_bool(true);
                    t.put_str(&dir.to_string_lossy());
                }
            }
            let _s = telemetry::span("ckpt.retile").arg("step", self.step);
            self.enable_tiling(policy);
        }
        w
    }

    /// The checkpoint container for a simulation already in canonical
    /// (untiled) particle layout.
    fn checkpoint_writer_canonical(&self) -> Writer {
        debug_assert!(self.tiling.is_none(), "canonical writer needs the untiled layout");
        let mut w = Writer::new();

        let g = w.section("grid");
        g.put_usize(self.grid.nx);
        g.put_usize(self.grid.ny);
        g.put_usize(self.grid.nz);
        g.put_f32(self.grid.dx);
        g.put_f32(self.grid.dy);
        g.put_f32(self.grid.dz);
        g.put_f32(self.grid.dt);

        let s = w.section("sim");
        s.put_u64(self.step);
        // usize::MAX (the "sort immediately" sentinel) survives as
        // u64::MAX; the restore path saturates it back
        s.put_u64(self.steps_since_sort as u64);
        s.put_u8(strategy_tag(self.strategy));
        s.put_u8(scatter_tag(self.scatter_mode));
        s.put_usize(self.scatter_workers);
        put_order(s, self.sort_order);
        s.put_usize(self.sort_interval);
        match &self.laser {
            None => s.put_bool(false),
            Some(l) => {
                s.put_bool(true);
                s.put_usize(l.plane);
                s.put_f32(l.amplitude);
                s.put_f32(l.omega);
            }
        }

        let f = w.section("fields");
        f.put_f32s(&self.fields.ex);
        f.put_f32s(&self.fields.ey);
        f.put_f32s(&self.fields.ez);
        f.put_f32s(&self.fields.bx);
        f.put_f32s(&self.fields.by);
        f.put_f32s(&self.fields.bz);
        f.put_f32s(&self.fields.jx);
        f.put_f32s(&self.fields.jy);
        f.put_f32s(&self.fields.jz);

        let sp = w.section("species");
        sp.put_usize(self.species.len());
        for s in &self.species {
            sp.put_str(&s.name);
            sp.put_f32(s.q);
            sp.put_f32(s.m);
            sp.put_f32s(&s.dx);
            sp.put_f32s(&s.dy);
            sp.put_f32s(&s.dz);
            sp.put_u32s(&s.cell);
            sp.put_f32s(&s.ux);
            sp.put_f32s(&s.uy);
            sp.put_f32s(&s.uz);
            sp.put_f32s(&s.w);
            put_order(sp, s.current_order());
        }

        if let Some(driver) = &self.tuner {
            put_driver_state(w.section("tuner"), &driver.state());
        }

        let counters = telemetry::counters();
        let t = w.section("telemetry");
        t.put_usize(counters.len());
        for (name, value) in &counters {
            t.put_str(name);
            t.put_u64(*value);
        }

        let snap = self.energies();
        let e = w.section("energy");
        e.put_f64(snap.time);
        e.put_f64(snap.field_e);
        e.put_f64(snap.field_b);
        e.put_f64s(&snap.kinetic);

        w
    }

    /// Serialize the checkpoint into `w`; returns bytes written. Counts
    /// `ckpt.bytes_written` and records a `ckpt.write` span.
    pub fn checkpoint<W: Write>(&mut self, w: &mut W) -> std::io::Result<u64> {
        let _s = telemetry::span("ckpt.write").arg("step", self.step);
        let bytes = self.checkpoint_writer().write_to(w)?;
        telemetry::count("ckpt.bytes_written", bytes);
        Ok(bytes)
    }

    /// The checkpoint as an owned byte buffer.
    pub fn checkpoint_bytes(&mut self) -> Vec<u8> {
        let mut out = Vec::new();
        self.checkpoint(&mut out).expect("writing to a Vec cannot fail");
        out
    }

    /// Write the checkpoint to `path` atomically (temp file + fsync +
    /// rename), rotating any existing snapshot to `<path>.prev` so a
    /// crash mid-write always leaves one good snapshot behind.
    pub fn checkpoint_to(&mut self, path: &Path) -> std::io::Result<u64> {
        let _s = telemetry::span("ckpt.write").arg("step", self.step);
        let bytes = ckpt::save_atomic(path, &self.checkpoint_writer())?;
        telemetry::count("ckpt.bytes_written", bytes);
        Ok(bytes)
    }

    // --------------------------------------------------------- read path

    /// Rebuild a simulation from checkpoint bytes. Counts
    /// `ckpt.bytes_read` (after counter baselines are adopted, so the
    /// bump is live, not absorbed into the baseline) and records a
    /// `ckpt.restore` span.
    pub fn restore_bytes(bytes: &[u8]) -> Result<Self, RestoreError> {
        let _s = telemetry::span("ckpt.restore");
        let snap = Snapshot::from_bytes(bytes)?;
        let sim = Self::restore_from_snapshot(&snap)?;
        telemetry::count("ckpt.bytes_read", bytes.len() as u64);
        Ok(sim)
    }

    /// Rebuild a simulation from a checkpoint stream.
    pub fn restore<R: Read>(r: &mut R) -> Result<Self, RestoreError> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        Self::restore_bytes(&bytes)
    }

    /// Restore from `path`, falling back to the rotated `<path>.prev`
    /// snapshot when the primary is missing or fails *any* stage of
    /// validation (container, CRC, schema, energy cross-check). Returns
    /// the simulation and whether the fallback was used; when both fail,
    /// the primary's error is returned.
    pub fn restore_from_path(path: &Path) -> Result<(Self, bool), RestoreError> {
        let read = |p: &Path| {
            std::fs::read(p).map_err(RestoreError::from).and_then(|b| Self::restore_bytes(&b))
        };
        match read(path) {
            Ok(sim) => Ok((sim, false)),
            Err(primary) => match read(&ckpt::file::prev_path(path)) {
                Ok(sim) => Ok((sim, true)),
                Err(_) => {
                    if telemetry::enabled() {
                        telemetry::dump_flight(&format!(
                            "ckpt.restore: primary and .prev both failed for {}: {primary}",
                            path.display()
                        ));
                    }
                    Err(primary)
                }
            },
        }
    }

    /// Rebuild a simulation from a parsed snapshot. Every section is
    /// decoded strictly (leftover bytes, length mismatches, and unknown
    /// tags are [`RestoreError::SchemaDrift`]); the energy ledger saved
    /// at checkpoint time is recomputed from the restored state and must
    /// match bit-for-bit.
    pub fn restore_from_snapshot(snap: &Snapshot) -> Result<Self, RestoreError> {
        let mut g = snap.section("grid")?;
        let grid = Grid {
            nx: g.get_usize()?,
            ny: g.get_usize()?,
            nz: g.get_usize()?,
            dx: g.get_f32()?,
            dy: g.get_f32()?,
            dz: g.get_f32()?,
            dt: g.get_f32()?,
        };
        g.finish()?;
        if grid.nx == 0 || grid.ny == 0 || grid.nz == 0 {
            return Err(RestoreError::SchemaDrift("grid has zero cells".into()));
        }
        let cells = grid.cells();
        let mut sim = Simulation::new(grid.clone());

        let mut s = snap.section("sim")?;
        sim.step = s.get_u64()?;
        sim.steps_since_sort = usize::try_from(s.get_u64()?).unwrap_or(usize::MAX);
        sim.strategy = strategy_from(s.get_u8()?)?;
        let scatter_mode = scatter_from(s.get_u8()?)?;
        let scatter_workers = s.get_usize()?;
        sim.sort_order = get_order(&mut s)?;
        sim.sort_interval = s.get_usize()?;
        sim.laser = if s.get_bool()? {
            Some(LaserDriver {
                plane: s.get_usize()?,
                amplitude: s.get_f32()?,
                omega: s.get_f32()?,
            })
        } else {
            None
        };
        s.finish()?;
        if scatter_workers == 0 {
            return Err(RestoreError::SchemaDrift("scatter worker count is zero".into()));
        }
        if sim.laser.as_ref().is_some_and(|l| l.plane >= sim.grid.nx) {
            return Err(RestoreError::SchemaDrift("laser plane outside the grid".into()));
        }
        // rebuilds the accumulator exactly as the checkpointed run had it
        // (replica count is bit-visible in deposition order)
        sim.configure_scatter(scatter_workers, scatter_mode);

        let mut f = snap.section("fields")?;
        sim.fields.ex = f.get_f32s()?;
        sim.fields.ey = f.get_f32s()?;
        sim.fields.ez = f.get_f32s()?;
        sim.fields.bx = f.get_f32s()?;
        sim.fields.by = f.get_f32s()?;
        sim.fields.bz = f.get_f32s()?;
        sim.fields.jx = f.get_f32s()?;
        sim.fields.jy = f.get_f32s()?;
        sim.fields.jz = f.get_f32s()?;
        f.finish()?;
        for (name, arr) in [
            ("ex", &sim.fields.ex),
            ("ey", &sim.fields.ey),
            ("ez", &sim.fields.ez),
            ("bx", &sim.fields.bx),
            ("by", &sim.fields.by),
            ("bz", &sim.fields.bz),
            ("jx", &sim.fields.jx),
            ("jy", &sim.fields.jy),
            ("jz", &sim.fields.jz),
        ] {
            if arr.len() != cells {
                return Err(RestoreError::SchemaDrift(format!(
                    "field {name} has {} values for {cells} cells",
                    arr.len()
                )));
            }
        }

        let mut sp = snap.section("species")?;
        let n_species = sp.get_usize()?;
        for _ in 0..n_species {
            let name = sp.get_str()?;
            let q = sp.get_f32()?;
            let m = sp.get_f32()?;
            if m.is_nan() || m <= 0.0 {
                return Err(RestoreError::SchemaDrift(format!(
                    "species {name:?} mass {m} is not positive"
                )));
            }
            let mut species = Species::new(name, q, m);
            species.dx = sp.get_f32s()?;
            species.dy = sp.get_f32s()?;
            species.dz = sp.get_f32s()?;
            species.cell = sp.get_u32s()?;
            species.ux = sp.get_f32s()?;
            species.uy = sp.get_f32s()?;
            species.uz = sp.get_f32s()?;
            species.w = sp.get_f32s()?;
            let order = get_order(&mut sp)?;
            let n = species.cell.len();
            for (arr_name, len) in [
                ("dx", species.dx.len()),
                ("dy", species.dy.len()),
                ("dz", species.dz.len()),
                ("ux", species.ux.len()),
                ("uy", species.uy.len()),
                ("uz", species.uz.len()),
                ("w", species.w.len()),
            ] {
                if len != n {
                    return Err(RestoreError::SchemaDrift(format!(
                        "species {:?}: {arr_name} has {len} values for {n} particles",
                        species.name
                    )));
                }
            }
            species.validate(&sim.grid).map_err(|e| {
                RestoreError::SchemaDrift(format!("species {:?}: {e}", species.name))
            })?;
            species.set_order_hint(order);
            species.debug_validate_sorted();
            sim.species.push(species);
        }
        sp.finish()?;

        if snap.has_section("tuner") {
            let mut t = snap.section("tuner")?;
            let state = get_driver_state(&mut t)?;
            t.finish()?;
            let driver = TuneDriver::from_state(state)
                .map_err(|e| RestoreError::SchemaDrift(format!("tuner state: {e}")))?;
            sim.set_tuner(driver);
        }

        let mut t = snap.section("telemetry")?;
        let n_counters = t.get_usize()?;
        let mut saved = std::collections::BTreeMap::new();
        for _ in 0..n_counters {
            let name = t.get_str()?;
            let value = t.get_u64()?;
            saved.insert(name, value);
        }
        t.finish()?;
        telemetry::restore_counter_baselines(&saved);

        // the energy ledger doubles as an end-to-end integrity check:
        // recompute it from the restored state and require bit equality
        let mut e = snap.section("energy")?;
        let time = e.get_f64()?;
        let field_e = e.get_f64()?;
        let field_b = e.get_f64()?;
        let kinetic = e.get_f64s()?;
        e.finish()?;
        let now = sim.energies();
        let matches = now.time.to_bits() == time.to_bits()
            && now.field_e.to_bits() == field_e.to_bits()
            && now.field_b.to_bits() == field_b.to_bits()
            && now.kinetic.len() == kinetic.len()
            && now.kinetic.iter().zip(&kinetic).all(|(a, b)| a.to_bits() == b.to_bits());
        if !matches {
            return Err(RestoreError::SchemaDrift(
                "energy ledger does not match the restored state".into(),
            ));
        }

        // re-enable tiling last: the sections above (species arrays,
        // energy cross-check) all read the canonical layout, and
        // retiling is an exact, deterministic round trip
        if snap.has_section("tiling") {
            let mut t = snap.section("tiling")?;
            let tile_cells = t.get_usize()?;
            let compress = t.get_bool()?;
            let max_hot = t.get_usize()?;
            let spill_dir = if t.get_bool()? {
                Some(std::path::PathBuf::from(t.get_str()?))
            } else {
                None
            };
            t.finish()?;
            if tile_cells == 0 || max_hot == 0 {
                return Err(RestoreError::SchemaDrift(
                    "tiling policy with zero tile_cells or max_hot".into(),
                ));
            }
            sim.enable_tiling(TilePolicy { tile_cells, compress, max_hot, spill_dir });
        }

        Ok(sim)
    }

    // ---------------------------------------------------- recoverable step

    /// [`Simulation::step_on`], but a worker-pool lane panic surfaces as
    /// a typed [`StepError::WorkerPanic`] instead of unwinding through
    /// the caller. Any other panic payload is re-raised unchanged. On
    /// `Err` the step was torn mid-flight and the simulation state is
    /// unspecified: restore from the last checkpoint.
    pub fn try_step_on<S: ExecSpace>(&mut self, space: &S) -> Result<PushStats, StepError> {
        match catch_unwind(AssertUnwindSafe(|| self.step_on_checked(space))) {
            Ok(result) => result,
            Err(payload) => match payload.downcast::<DispatchPanic>() {
                Ok(dp) => {
                    // leave post-mortem evidence: the flight recorder holds
                    // the last spans before the lane died
                    if telemetry::enabled() {
                        telemetry::dump_flight(&format!(
                            "sim.try_step: worker panic on {} lane(s) at step {}",
                            dp.panicked_lanes, self.step
                        ));
                    }
                    Err(StepError::WorkerPanic { panicked_lanes: dp.panicked_lanes })
                }
                Err(other) => resume_unwind(other),
            },
        }
    }

    /// [`Simulation::try_step_on`] on the calling thread.
    pub fn try_step(&mut self) -> Result<PushStats, StepError> {
        self.try_step_on(&Serial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deck::Deck;
    use tuner::Tuner;

    fn weibel() -> Simulation {
        Deck::weibel(6, 6, 6, 4, 0.3).build()
    }

    fn assert_bit_identical(a: &Simulation, b: &Simulation) {
        assert_eq!(a.step_count(), b.step_count());
        assert_eq!(a.fields.ex, b.fields.ex);
        assert_eq!(a.fields.bz, b.fields.bz);
        assert_eq!(a.species.len(), b.species.len());
        for (sa, sb) in a.species.iter().zip(&b.species) {
            assert_eq!(sa.cell, sb.cell);
            assert_eq!(sa.dx, sb.dx);
            assert_eq!(sa.ux, sb.ux);
            assert_eq!(sa.w, sb.w);
        }
    }

    #[test]
    fn round_trip_restores_bit_identical_state() {
        let mut sim = weibel();
        sim.sort_order = Some(SortOrder::Standard);
        sim.sort_interval = 3;
        sim.run(7);
        let bytes = sim.checkpoint_bytes();
        let restored = Simulation::restore_bytes(&bytes).expect("restore");
        assert_bit_identical(&sim, &restored);
        assert_eq!(restored.sort_order, Some(SortOrder::Standard));
        assert_eq!(restored.sort_interval, 3);
        for (sa, sb) in sim.species.iter().zip(&restored.species) {
            assert_eq!(sa.current_order(), sb.current_order());
        }
    }

    #[test]
    fn resumed_run_matches_the_uninterrupted_one() {
        let mut full = weibel();
        full.run(12);
        let mut half = weibel();
        half.run(5);
        let bytes = half.checkpoint_bytes();
        let mut resumed = Simulation::restore_bytes(&bytes).expect("restore");
        resumed.run(7);
        assert_bit_identical(&full, &resumed);
    }

    #[test]
    fn tuner_armed_checkpoint_round_trips_the_driver() {
        let arms = vec![
            Config::unsorted(Strategy::Auto, ScatterMode::Atomic),
            Config {
                order: Some(SortOrder::Standard),
                interval: 5,
                strategy: Strategy::Auto,
                scatter: ScatterMode::Atomic,
                tile: Some(TileCfg { tile_cells: 256, compress: true }),
            },
        ];
        let mut sim = weibel();
        sim.set_tuner(TuneDriver::new(Tuner::new(arms, 3)));
        // stop inside the first epoch: the tiled arm must round-trip
        // through the codec without ever being applied (checkpointing
        // requires the canonical untiled layout)
        sim.run(2);
        let bytes = sim.checkpoint_bytes();
        let restored = Simulation::restore_bytes(&bytes).expect("restore");
        let a = sim.tuner().expect("original armed").state();
        let b = restored.tuner().expect("restored armed").state();
        assert_eq!(a, b);
    }

    #[test]
    fn tiled_checkpoint_is_transparent_and_resumes_tiled() {
        use crate::tile::TilePolicy;
        // uninterrupted tiled reference
        let mut full = weibel();
        full.enable_tiling(TilePolicy::new(16));
        full.run(9);
        full.disable_tiling();
        // same run, checkpointed mid-flight while tiled
        let mut half = weibel();
        half.enable_tiling(TilePolicy::new(16));
        half.run(4);
        let bytes = half.checkpoint_bytes();
        // the snapshot is transparent: the sim is still tiled and still
        // steppable afterwards, bit-identically
        assert!(half.is_tiled(), "checkpoint must retile transparently");
        let mut resumed = Simulation::restore_bytes(&bytes).expect("tiled restore");
        assert!(resumed.is_tiled(), "restore must re-enable tiling");
        let p = resumed.tile_engine().unwrap().policy().clone();
        assert_eq!((p.tile_cells, p.compress, p.max_hot), (16, true, 2));
        half.run(5);
        resumed.run(5);
        half.disable_tiling();
        resumed.disable_tiling();
        assert_bit_identical(&full, &half);
        assert_bit_identical(&full, &resumed);
    }

    #[test]
    fn tiled_checkpoint_carries_the_spill_policy() {
        use crate::tile::TilePolicy;
        let dir = std::env::temp_dir().join(format!("vpic-ckpt-spill-{}", std::process::id()));
        let mut sim = weibel();
        let mut policy = TilePolicy::new(8);
        policy.max_hot = 3;
        policy.compress = false;
        policy.spill_dir = Some(dir.clone());
        sim.enable_tiling(policy.clone());
        sim.run(2);
        let bytes = sim.checkpoint_bytes();
        drop(sim); // Drop sweeps this sim's spill files
        let restored = Simulation::restore_bytes(&bytes).expect("restore");
        assert_eq!(restored.tile_engine().unwrap().policy(), &policy);
        drop(restored);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_sections_surface_typed_errors() {
        let mut sim = weibel();
        sim.run(2);
        let bytes = sim.checkpoint_bytes();
        // truncation anywhere is typed
        match Simulation::restore_bytes(&bytes[..bytes.len() / 2]) {
            Err(RestoreError::Truncated | RestoreError::BadCrc { .. }) => {}
            other => panic!("truncated restore must fail typed, got {:?}", other.err()),
        }
        // a flipped bit is caught by a section CRC
        let mut flipped = bytes.clone();
        flipped[bytes.len() / 2] ^= 0x10;
        match Simulation::restore_bytes(&flipped) {
            Err(_) => {}
            Ok(_) => panic!("bit flip must not restore"),
        }
    }

    #[test]
    fn energy_cross_check_rejects_tampered_state() {
        let mut sim = weibel();
        sim.run(2);
        // build a container whose energy ledger disagrees with its state
        let bytes = sim.checkpoint_bytes();
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        let mut tampered = Writer::new();
        for name in snap.section_names() {
            let mut r = snap.section(name).unwrap();
            if name == "energy" {
                let time = r.get_f64().unwrap();
                let field_e = r.get_f64().unwrap();
                let field_b = r.get_f64().unwrap();
                let kinetic = r.get_f64s().unwrap();
                let e = tampered.section("energy");
                e.put_f64(time);
                e.put_f64(field_e + 1.0); // lie about the field energy
                e.put_f64(field_b);
                e.put_f64s(&kinetic);
            } else {
                tampered.section(name).put_raw(r.take_rest());
            }
        }
        match Simulation::restore_bytes(&tampered.to_bytes()) {
            Err(RestoreError::SchemaDrift(msg)) => {
                assert!(msg.contains("energy"), "unexpected drift message: {msg}")
            }
            other => panic!("tampered energy must be SchemaDrift, got {:?}", other.err()),
        }
    }

    #[test]
    fn worker_panic_surfaces_as_a_typed_step_error() {
        let mut sim = weibel();
        // inject a panic through the pool by dispatching a poisoned task
        // on the same space the step uses
        let pool = pk::WorkerPool::new(2);
        let err = pool.try_run(&|lane| {
            if lane == 1 {
                panic!("injected lane failure");
            }
        });
        assert!(err.is_err());
        // and the sim-facing wrapper converts lane panics to StepError
        let stats = sim.try_step().expect("serial step cannot panic");
        assert!(stats.pushed > 0);
    }

    #[test]
    fn atomic_file_round_trip_and_fallback() {
        let dir = std::env::temp_dir().join(format!("vpic-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.vpck");
        let mut sim = weibel();
        sim.run(3);
        sim.checkpoint_to(&path).unwrap();
        sim.run(2);
        sim.checkpoint_to(&path).unwrap(); // rotates the first to .prev
        let (restored, fell_back) = Simulation::restore_from_path(&path).unwrap();
        assert!(!fell_back);
        assert_bit_identical(&sim, &restored);
        // corrupt the primary: restore falls back to the rotated snapshot
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, ckpt::faults::truncated(&bytes, bytes.len() / 3)).unwrap();
        let (older, fell_back) = Simulation::restore_from_path(&path).unwrap();
        assert!(fell_back);
        assert_eq!(older.step_count(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
