//! The simulation driver: the VPIC main loop.
//!
//! One [`Simulation::step`] is VPIC's advance: load interpolators from the
//! fields, push every species (gather → Boris → mover/deposit), unload the
//! current accumulator into J, then advance B and E on the Yee mesh. The
//! sorting hook ([`Simulation::sort_particles`]) and the strategy/scatter
//! knobs expose exactly the paper's tuning axes.

use crate::accumulate::Accumulator;
use crate::energy::EnergySnapshot;
use crate::field::FieldArray;
use crate::grid::Grid;
use crate::interp::{load_interpolators, load_interpolators_into, Interpolator, InterpolatorArray};
use crate::push::{push_species_on, PushStats};
use crate::species::Species;
use crate::tile::{TileEngine, TilePolicy};
use crate::tune::TuneDriver;
use pk::atomic::ScatterMode;
use pk::{ExecSpace, Serial};
use psort::SortOrder;
use vsimd::Strategy;

// ── Accounting footprints for the grid-side streaming kernels ─────────────
//
// Per-cell byte/flop counts charged to accounting spaces (`pk::SimGpu`).
// These kernels sweep the grid arrays once with no data-dependent reuse, so
// a streaming model is exact; the footprints come from the array reads and
// writes each pass performs (f32 = 4 B).

/// Interpolator load: read E, B, and the TCA stencil neighborhood
/// (6 arrays × ~7 taps averaged ≈ 60 reads), write 18 coefficients.
const INTERP_STREAM_BYTES: f64 = 312.0;
/// Finite-difference coefficient arithmetic per cell.
const INTERP_FLOPS: f64 = 60.0;
/// J clear: write jx/jy/jz once.
const CLEAR_J_BYTES: f64 = 12.0;
/// Accumulator unload: read 12 fixed-point i64 slots, write + read-modify
/// J (3 × 2 × 4 B) → 96 + 24 ≈ plus neighbor scatter taps.
const UNLOAD_BYTES: f64 = 204.0;
/// Fixed-point → float conversion and adds per cell.
const UNLOAD_FLOPS: f64 = 12.0;
/// Leapfrog advance (B half, E, B half): read/write 6 field arrays plus
/// curl-stencil neighbor reads across the three passes.
const FIELD_SOLVE_BYTES: f64 = 108.0;
/// Curl + update arithmetic per cell across the three passes.
const FIELD_SOLVE_FLOPS: f64 = 60.0;

/// A plane-antenna current driver (the laser injector for the LPI deck):
/// adds `amplitude · sin(ω·t)` to `jz` over the `x = plane` cells each
/// step, launching an electromagnetic wave into the plasma.
#[derive(Debug, Clone)]
pub struct LaserDriver {
    /// x-plane index of the antenna.
    pub plane: usize,
    /// Peak driven current density.
    pub amplitude: f32,
    /// Angular frequency (normalized; ω = 2πc/λ with λ in cells).
    pub omega: f32,
}

/// The owned state of one simulation.
pub struct Simulation {
    /// Grid geometry.
    pub grid: Grid,
    /// Field state.
    pub fields: FieldArray,
    /// Particle species.
    pub species: Vec<Species>,
    /// Vectorization strategy for the push kernel.
    pub strategy: Strategy,
    /// Scatter mode for current deposition.
    pub scatter_mode: ScatterMode,
    /// Optional sorting applied every `sort_interval` steps.
    pub sort_order: Option<SortOrder>,
    /// Steps between sorts (VPIC decks typically sort every ~20 steps).
    pub sort_interval: usize,
    /// Optional laser antenna.
    pub laser: Option<LaserDriver>,
    pub(crate) step: u64,
    /// Steps since the last scheduled sort fired. Starts saturated so
    /// the first step with sorting enabled sorts (unless every species is
    /// already in the requested order, in which case the per-species
    /// skip makes it free).
    pub(crate) steps_since_sort: usize,
    acc: Accumulator,
    /// Step-persistent interpolator buffer, refilled in place every step
    /// (zero per-step allocation after warmup). Derived state: rebuilt
    /// from the fields, so checkpoints don't carry it.
    interp: InterpolatorArray,
    /// Worker count the accumulator was last sized for. Tracked here
    /// (the accumulator only materializes replicas in duplicated mode)
    /// so a checkpoint can rebuild an identical accumulator on restore —
    /// replica count changes deposition summation order, which is
    /// bit-visible.
    pub(crate) scatter_workers: usize,
    /// The adaptive tuning driver, when [`Simulation::set_tuner`] armed
    /// one. Taken out of the struct during each step so it can borrow
    /// the simulation mutably.
    pub(crate) tuner: Option<Box<TuneDriver>>,
    /// Wall time the last step spent sorting, ns (0 when no sort fired).
    pub(crate) last_sort_ns: u64,
    /// Whether the last step's scheduled sort fired at all.
    pub(crate) last_sort_fired: bool,
    /// The tiled stepping engine while tiling is enabled: the species'
    /// particle arrays are empty and the engine owns the population as
    /// compressed cell-range tiles (DESIGN §14).
    pub(crate) tiling: Option<Box<TileEngine>>,
    /// Pool/spill defaults applied when a tuner arm enables tiling (the
    /// arm itself only carries tile size and compression).
    pub(crate) tile_defaults: Option<TilePolicy>,
}

impl Simulation {
    /// A simulation with empty fields and no species.
    pub fn new(grid: Grid) -> Self {
        let fields = FieldArray::new(grid.clone());
        let acc = Accumulator::new(grid.cells(), 1, ScatterMode::Atomic);
        Self {
            grid,
            fields,
            species: Vec::new(),
            strategy: Strategy::Auto,
            scatter_mode: ScatterMode::Atomic,
            sort_order: None,
            sort_interval: 20,
            laser: None,
            step: 0,
            steps_since_sort: usize::MAX,
            acc,
            interp: InterpolatorArray::new(),
            scatter_workers: 1,
            tuner: None,
            last_sort_ns: 0,
            last_sort_fired: false,
            tiling: None,
            tile_defaults: None,
        }
    }

    /// Add a species, returning its index.
    pub fn add_species(&mut self, species: Species) -> usize {
        assert!(self.tiling.is_none(), "disable_tiling() before adding species");
        debug_assert!(species.validate(&self.grid).is_ok());
        self.species.push(species);
        self.species.len() - 1
    }

    /// Steps taken so far.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Elapsed simulation time.
    pub fn time(&self) -> f64 {
        self.step as f64 * self.grid.dt as f64
    }

    /// Total particles across species (tiled or not).
    pub fn particle_count(&self) -> usize {
        self.species.iter().map(|s| s.len()).sum::<usize>()
            + self.tiling.as_ref().map_or(0, |e| e.particle_count())
    }

    /// Compute fresh interpolators from the current fields.
    pub fn interpolators(&self) -> Vec<Interpolator> {
        load_interpolators(&self.fields)
    }

    /// Sort every species' particles by cell index under `order`
    /// (the paper's §3.2 hook). Species already in `order` are skipped;
    /// returns how many species actually moved.
    pub fn sort_particles(&mut self, order: SortOrder) -> usize {
        self.species.iter_mut().map(|s| s.sort(order) as usize).sum()
    }

    /// Make the next step's scheduled sort fire regardless of how recently
    /// one ran. Called when the sort order changes mid-run (epoch
    /// boundaries) so a new order takes effect immediately.
    pub fn force_next_sort(&mut self) {
        self.steps_since_sort = usize::MAX;
    }

    /// Decomposed-stepping twin of the scheduled sort inside
    /// [`Simulation::step_on`]: advance the sort schedule exactly as a
    /// single-rank step would, and return the order to apply if one is
    /// due now. The caller owns the actual sorting — a rank driver
    /// usually holds parallel per-particle state (e.g. global load-order
    /// id maps) that must be co-permuted with the SoA arrays, so the
    /// reorder cannot happen behind its back inside
    /// [`Simulation::begin_step`].
    pub fn consume_due_sort(&mut self) -> Option<SortOrder> {
        self.last_sort_ns = 0;
        self.last_sort_fired = false;
        let due = match self.sort_order {
            Some(order)
                if self.sort_interval > 0 && self.steps_since_sort >= self.sort_interval =>
            {
                self.last_sort_fired = true;
                self.steps_since_sort = 0;
                Some(order)
            }
            _ => None,
        };
        self.steps_since_sort = self.steps_since_sort.saturating_add(1);
        due
    }

    /// Apply one tuner arm: strategy, scatter mode (the accumulator is
    /// rebuilt for `workers` replicas), sort order and cadence. A changed
    /// sort order forces a sort on the next step. This is the *only*
    /// mutation the adaptive tuner performs, and replaying the same calls
    /// at the same steps (see [`crate::tune::TuneDriver::schedule`])
    /// reproduces a tuned run bit-for-bit.
    pub fn apply_tune_config(&mut self, cfg: &tuner::Config, workers: usize) {
        self.strategy = cfg.strategy;
        self.configure_scatter(workers.max(1), cfg.scatter);
        if self.sort_order != cfg.order {
            self.force_next_sort();
        }
        self.sort_order = cfg.order;
        self.sort_interval = cfg.interval;
        // tiling axis: re-tile (a deterministic untile + retile — ids
        // are canonical, so the round trip is exact) only when the arm
        // actually changes tile size or compression
        match cfg.tile {
            None => {
                if self.tiling.is_some() {
                    self.disable_tiling();
                }
            }
            Some(tc) => {
                let current = self
                    .tiling
                    .as_ref()
                    .map(|e| (e.policy().tile_cells, e.policy().compress));
                if current != Some((tc.tile_cells, tc.compress)) {
                    if self.tiling.is_some() {
                        self.disable_tiling();
                    }
                    let mut policy =
                        self.tile_defaults.clone().unwrap_or_else(|| TilePolicy::new(tc.tile_cells));
                    policy.tile_cells = tc.tile_cells.max(1);
                    policy.compress = tc.compress;
                    self.enable_tiling(policy);
                }
            }
        }
    }

    // ── Tiled stepping (DESIGN §14) ────────────────────────────────────

    /// Hand the particle population to a [`TileEngine`]: each species'
    /// SoA is split into contiguous cell-range tiles (sorted by cell,
    /// tagged with canonical ids) that live compressed — in RAM or
    /// spilled under `policy.spill_dir` — except for a bounded hot
    /// pool. Subsequent steps run the tiled execution path, which is
    /// bit-identical to the untiled path for any tile size, pool size,
    /// strategy, and worker count.
    pub fn enable_tiling(&mut self, policy: TilePolicy) {
        assert!(self.tiling.is_none(), "tiling already enabled");
        if let Some(dir) = &policy.spill_dir {
            // a checkpointed policy may restore on a host where the
            // spill dir does not exist yet; a failure here surfaces at
            // the first spill write, which reports the path
            let _ = std::fs::create_dir_all(dir);
        }
        let mut engine = Box::new(TileEngine::new(policy, self.grid.cells(), self.species.len()));
        for (si, s) in self.species.iter_mut().enumerate() {
            engine.load_species(si, s);
        }
        self.tiling = Some(engine);
    }

    /// Reassemble every species into canonical (id) order and drop the
    /// engine. The result is exactly the array order an untiled,
    /// sort-free run would have — energies, checkpoints, and bitwise
    /// comparisons line up. No-op when tiling is off.
    pub fn disable_tiling(&mut self) {
        let Some(mut engine) = self.tiling.take() else { return };
        for (si, s) in self.species.iter_mut().enumerate() {
            engine.unload_species(si, s);
        }
    }

    /// True while the tiled execution path is active.
    pub fn is_tiled(&self) -> bool {
        self.tiling.is_some()
    }

    /// The active tile engine, if any (residency stats, policy).
    pub fn tile_engine(&self) -> Option<&TileEngine> {
        self.tiling.as_deref()
    }

    /// Pool/spill defaults for tuner-driven tiling: when a tuner arm
    /// carries a [`tuner::TileCfg`], [`Simulation::apply_tune_config`]
    /// builds the policy from these defaults plus the arm's tile size
    /// and compression flag.
    pub fn set_tile_defaults(&mut self, policy: TilePolicy) {
        self.tile_defaults = Some(policy);
    }

    /// Arm the adaptive tuner: from the next step on, `driver` measures
    /// epochs and swaps configurations at epoch boundaries (never inside
    /// a step, so physics is bit-identical per-epoch to a fixed-config
    /// run).
    pub fn set_tuner(&mut self, driver: TuneDriver) {
        self.tuner = Some(Box::new(driver));
    }

    /// The armed tuning driver, if any.
    pub fn tuner(&self) -> Option<&TuneDriver> {
        self.tuner.as_deref()
    }

    /// Disarm and return the tuning driver (e.g. to read its schedule).
    pub fn take_tuner(&mut self) -> Option<TuneDriver> {
        self.tuner.take().map(|b| *b)
    }

    /// Advance one full step on the calling thread; returns aggregate
    /// push statistics.
    pub fn step(&mut self) -> PushStats {
        self.step_on(&Serial)
    }

    /// Advance one full step with the particle push distributed over
    /// `space` (e.g. a pooled [`pk::Threads`]); returns aggregate push
    /// statistics. With a duplicated scatter mode, size the accumulator
    /// via [`Simulation::configure_scatter`] with at least
    /// `space.concurrency()` workers.
    pub fn step_on<S: ExecSpace>(&mut self, space: &S) -> PushStats {
        // `step_on_checked` can only fail on a torn internal invariant
        // (e.g. a tiled sim whose engine is gone); the infallible entry
        // point keeps the historical contract by turning that into a
        // panic, while servers use `try_step_on` for a typed error.
        self.step_on_checked(space).unwrap_or_else(|e| panic!("step failed: {e}"))
    }

    /// [`Simulation::step_on`] with internal-invariant failures surfaced
    /// as typed [`crate::StepError`]s instead of panics. Worker-lane
    /// panics still unwind; [`Simulation::try_step_on`] adds the
    /// catch-and-type layer for those.
    pub(crate) fn step_on_checked<S: ExecSpace>(
        &mut self,
        space: &S,
    ) -> Result<PushStats, crate::StepError> {
        // The tuner's epoch bookkeeping brackets the step *outside* the
        // `sim.step` span: spans only record on drop, so finalizing an
        // epoch here guarantees the previous step's span is already in
        // the telemetry window being read.
        let mut driver = self.tuner.take();
        if let Some(d) = &mut driver {
            d.before_step(self, space.concurrency());
        }
        let t0 = telemetry::now_ns();
        let stats = self.step_inner(space);
        let step_ns = telemetry::now_ns().saturating_sub(t0);
        if let (Some(d), Ok(stats)) = (&mut driver, &stats) {
            d.after_step(stats, step_ns, self.last_sort_ns, self.last_sort_fired);
        }
        self.tuner = driver;
        stats
    }

    fn step_inner<S: ExecSpace>(&mut self, space: &S) -> Result<PushStats, crate::StepError> {
        if self.tiling.is_some() {
            return self.step_tiled(space);
        }
        let _step_span =
            telemetry::hspan("sim.step").arg("step", self.step).arg("space", space.name());
        // periodic sort, as VPIC decks schedule it
        self.last_sort_ns = 0;
        self.last_sort_fired = false;
        if let Some(order) = self.sort_order {
            if self.sort_interval > 0 && self.steps_since_sort >= self.sort_interval {
                let _s = telemetry::hspan("sim.sort").arg("order", order);
                let t0 = telemetry::now_ns();
                let moved = if space.accounting() {
                    // charge each species' sort as the record-permutation
                    // gather it performs: `perm[i]` is the old index read
                    // to fill slot `i`, over the 8-field 32 B SoA record
                    let mut moved = 0usize;
                    for s in &mut self.species {
                        if s.sort(order) {
                            moved += 1;
                            let keys: Vec<u32> =
                                s.sort_perm().iter().map(|&p| p as u32).collect();
                            space.charge(&pk::gpu::Access::Gather {
                                label: "sort",
                                keys: &keys,
                                table_len: s.len().max(1),
                                elem_bytes: 32,
                                stream_bytes: 32.0,
                                flops: 0.0,
                                atomic: false,
                            });
                        }
                    }
                    moved
                } else {
                    self.sort_particles(order)
                };
                self.last_sort_ns = telemetry::now_ns().saturating_sub(t0);
                self.last_sort_fired = true;
                self.steps_since_sort = 0;
                telemetry::count("sim.species_sorted", moved as u64);
            }
        }
        self.steps_since_sort = self.steps_since_sort.saturating_add(1);
        // the persistent buffer is taken out of `self` for the span of
        // the step so the push can borrow the species mutably alongside it
        let mut interps = std::mem::take(&mut self.interp);
        {
            let _s = telemetry::hspan("sim.interpolate");
            load_interpolators_into(space, self.strategy, &self.fields, &mut interps);
            self.charge_grid_stream(space, "interpolate", INTERP_STREAM_BYTES, INTERP_FLOPS);
        }
        let mut stats = PushStats::default();
        {
            let _s = telemetry::hspan("sim.push").arg("species", self.species.len());
            self.fields.clear_j_on(space);
            self.charge_grid_stream(space, "clear_j", CLEAR_J_BYTES, 0.0);
            self.acc.reset();
            for s in &mut self.species {
                let st =
                    push_species_on(space, self.strategy, &self.grid, s, &interps, &self.acc);
                if st.crossings > 0 {
                    // crossings moved particles out of their sorted
                    // positions; the next scheduled sort is real work
                    s.mark_unsorted();
                }
                stats.pushed += st.pushed;
                stats.crossings += st.crossings;
            }
        }
        telemetry::count("sim.particles_pushed", stats.pushed as u64);
        telemetry::count("sim.cell_crossings", stats.crossings as u64);
        self.interp = interps;
        self.unload_and_advance(space);
        self.step += 1;
        Ok(stats)
    }

    /// Charge a grid-sweep streaming kernel to an accounting space
    /// (no-op on real backends — cheap enough not to gate).
    fn charge_grid_stream<S: ExecSpace>(
        &self,
        space: &S,
        label: &'static str,
        bytes_per_cell: f64,
        flops_per_cell: f64,
    ) {
        if space.accounting() {
            let cells = self.grid.cells() as f64;
            space.charge(&pk::gpu::Access::Stream {
                label,
                bytes: cells * bytes_per_cell,
                flops: cells * flops_per_cell,
            });
        }
    }

    /// The grid-side tail of a step — accumulator unload, laser drive,
    /// and the leapfrog field advance — shared bit-for-bit by the
    /// untiled and tiled paths.
    fn unload_and_advance<S: ExecSpace>(&mut self, space: &S) {
        {
            let _s = telemetry::hspan("sim.accumulate");
            self.acc.unload_on(space, self.strategy, &mut self.fields);
            self.charge_grid_stream(space, "accumulate", UNLOAD_BYTES, UNLOAD_FLOPS);
        }
        {
            let _s = telemetry::hspan("sim.field_solve");
            // laser antenna: driven current on the injection plane
            if let Some(l) = &self.laser {
                let t = self.time() as f32;
                let drive = l.amplitude * (l.omega * t).sin();
                for iy in 0..self.grid.ny {
                    for iz in 0..self.grid.nz {
                        let v = self.grid.voxel(l.plane, iy, iz);
                        self.fields.jz[v] += drive;
                    }
                }
            }
            // leapfrog field advance (row-parallel, strategy-vectorized)
            self.fields.advance_b_on(space, self.strategy, 0.5);
            self.fields.advance_e_on(space, self.strategy);
            self.fields.advance_b_on(space, self.strategy, 0.5);
            self.charge_grid_stream(space, "field_solve", FIELD_SOLVE_BYTES, FIELD_SOLVE_FLOPS);
        }
    }

    /// The tiled step: identical physics to [`Simulation::step_inner`]
    /// with the particle phase streamed tile-by-tile by the engine.
    /// The scheduled global sort is skipped — every tile maintains its
    /// own `(cell, id)` order, which is the tiled analogue of the
    /// paper's sorted traversal.
    fn step_tiled<S: ExecSpace>(&mut self, space: &S) -> Result<PushStats, crate::StepError> {
        // a torn tiling invariant (engine gone while the sim still claims
        // to be tiled — a malformed or half-applied job config) degrades
        // to a typed error instead of killing a multi-tenant caller
        let Some(mut engine) = self.tiling.take() else {
            return Err(crate::StepError::TileEngineMissing);
        };
        let _step_span = telemetry::hspan("sim.step")
            .arg("step", self.step)
            .arg("space", space.name())
            .arg("tiled", 1u64);
        self.last_sort_ns = 0;
        self.last_sort_fired = false;
        self.steps_since_sort = self.steps_since_sort.saturating_add(1);
        let mut interps = std::mem::take(&mut self.interp);
        {
            let _s = telemetry::hspan("sim.interpolate");
            load_interpolators_into(space, self.strategy, &self.fields, &mut interps);
            self.charge_grid_stream(space, "interpolate", INTERP_STREAM_BYTES, INTERP_FLOPS);
        }
        let stats;
        {
            let _s = telemetry::hspan("sim.push").arg("species", self.species.len());
            self.fields.clear_j_on(space);
            self.charge_grid_stream(space, "clear_j", CLEAR_J_BYTES, 0.0);
            self.acc.reset();
            stats = engine.step_all(space, self.strategy, &self.grid, &interps, &self.acc);
        }
        self.tiling = Some(engine);
        telemetry::count("sim.particles_pushed", stats.pushed as u64);
        telemetry::count("sim.cell_crossings", stats.crossings as u64);
        self.interp = interps;
        self.unload_and_advance(space);
        self.step += 1;
        Ok(stats)
    }

    /// Advance `n` steps.
    pub fn run(&mut self, n: usize) -> PushStats {
        self.run_on(&Serial, n)
    }

    /// Advance `n` steps with the push distributed over `space`.
    pub fn run_on<S: ExecSpace>(&mut self, space: &S, n: usize) -> PushStats {
        let mut total = PushStats::default();
        for _ in 0..n {
            let s = self.step_on(space);
            total.pushed += s.pushed;
            total.crossings += s.crossings;
        }
        total
    }

    /// Energy bookkeeping snapshot.
    ///
    /// The kinetic sums fold in array order, so the ledger is only
    /// comparable across runs in canonical particle order — call
    /// [`Simulation::disable_tiling`] first when tiled.
    pub fn energies(&self) -> EnergySnapshot {
        assert!(
            self.tiling.is_none(),
            "energies() needs canonical particle order: disable_tiling() first"
        );
        let _s = telemetry::span("sim.diagnostics");
        EnergySnapshot::capture(self)
    }

    /// Maximum Gauss-law residual `|∇·E − ρ|` over all nodes. With
    /// charge-conserving deposition this stays at its initial value
    /// (≈0 for neutral starts) instead of growing secularly.
    #[allow(clippy::needless_range_loop)] // voxel-indexed sweep matches the math
    pub fn gauss_residual(&self) -> f64 {
        assert!(
            self.tiling.is_none(),
            "gauss_residual() reads the species arrays: disable_tiling() first"
        );
        let g = &self.grid;
        let mut rho = vec![0.0f64; g.cells()];
        for s in &self.species {
            for p in 0..s.len() {
                crate::accumulate::deposit_rho_node(
                    g,
                    &mut rho,
                    s.cell[p] as usize,
                    s.dx[p],
                    s.dy[p],
                    s.dz[p],
                    s.q * s.w[p],
                );
            }
        }
        let cell_volume = (g.dx * g.dy * g.dz) as f64;
        let mut worst = 0.0f64;
        for v in 0..g.cells() {
            let xm = g.neighbor(v, (-1, 0, 0));
            let ym = g.neighbor(v, (0, -1, 0));
            let zm = g.neighbor(v, (0, 0, -1));
            let f = &self.fields;
            let div_e = ((f.ex[v] - f.ex[xm]) / g.dx
                + (f.ey[v] - f.ey[ym]) / g.dy
                + (f.ez[v] - f.ez[zm]) / g.dz) as f64;
            let resid = (div_e - rho[v] / cell_volume).abs();
            worst = worst.max(resid);
        }
        worst
    }

    /// Capacities of the step-persistent field-pipeline scratch — the
    /// interpolator buffer and the accumulator's collect scratch — for
    /// no-alloc-after-warmup assertions.
    pub fn field_scratch_capacities(&self) -> (usize, usize) {
        (self.interp.capacity(), self.acc.scratch_capacity())
    }

    /// Rebuild the accumulator for a different worker count / scatter
    /// mode (used by the deposition ablation bench).
    pub fn configure_scatter(&mut self, workers: usize, mode: ScatterMode) {
        self.scatter_mode = mode;
        self.scatter_workers = workers;
        self.acc = Accumulator::new(self.grid.cells(), workers, mode);
    }

    // ── Multi-rank stepping seams (DESIGN §12) ─────────────────────────
    //
    // A decomposed cluster step interleaves halo exchange with the
    // phases below, so the monolithic `step_inner` is split at its
    // natural seams: push (fills the private accumulator), current
    // unload, and the step-counter bump. Field advances are driven
    // piecewise by the caller through the public `fields`; the
    // accumulator's raw fixed-point slots are exposed so rank-boundary
    // partial deposits can be summed exactly (integer adds commute, so
    // the merge is order- and partition-independent).

    /// First phase of a decomposed step: refresh interpolators from the
    /// current fields, clear J, reset the accumulator, and push every
    /// species. Identical arithmetic to the first half of
    /// [`Simulation::step`] with sorting disabled (the cluster driver
    /// owns sort and exchange policy). Runs on the calling thread.
    pub fn begin_step(&mut self) -> PushStats {
        assert!(self.tiling.is_none(), "decomposed stepping drives untiled ranks");
        let space = &Serial;
        let mut interps = std::mem::take(&mut self.interp);
        {
            let _s = telemetry::hspan("sim.interpolate");
            load_interpolators_into(space, self.strategy, &self.fields, &mut interps);
        }
        let mut stats = PushStats::default();
        {
            let _s = telemetry::hspan("sim.push").arg("species", self.species.len());
            self.fields.clear_j_on(space);
            self.acc.reset();
            for s in &mut self.species {
                let st = push_species_on(space, self.strategy, &self.grid, s, &interps, &self.acc);
                if st.crossings > 0 {
                    s.mark_unsorted();
                }
                stats.pushed += st.pushed;
                stats.crossings += st.crossings;
            }
        }
        self.interp = interps;
        stats
    }

    /// Second phase of a decomposed step: fold the (halo-merged)
    /// accumulator into J. Must run after every rank-boundary partial
    /// has been merged via [`Simulation::acc_set_cell_raw`].
    pub fn unload_currents(&mut self) {
        let _s = telemetry::hspan("sim.accumulate");
        self.acc.unload_on(&Serial, self.strategy, &mut self.fields);
    }

    /// Raw fixed-point accumulator slots for `cell` — the unit that
    /// ships between ranks during the current halo exchange.
    pub fn acc_cell_raw(&self, cell: usize) -> [i64; crate::accumulate::SLOTS] {
        self.acc.cell_raw(cell)
    }

    /// Wrapping-add `raw` into `cell`'s accumulator slots (halo reduce).
    pub fn acc_merge_cell_raw(&self, cell: usize, raw: &[i64; crate::accumulate::SLOTS]) {
        self.acc.merge_cell_raw(cell, raw)
    }

    /// Overwrite `cell`'s accumulator slots with `raw` (halo fill).
    pub fn acc_set_cell_raw(&self, cell: usize, raw: &[i64; crate::accumulate::SLOTS]) {
        self.acc.set_cell_raw(cell, raw)
    }

    /// Final phase of a decomposed step: advance the step counter (the
    /// caller has driven the field advance piecewise through `fields`).
    pub fn finish_step(&mut self) {
        self.step += 1;
    }

    /// Set the step counter directly — the multi-rank gather stamps the
    /// assembled global snapshot with the cluster step so `time()` and
    /// energy snapshots line up with the reference run.
    pub fn set_step_count(&mut self, n: u64) {
        self.step = n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn neutral_pair_sim(nx: usize) -> Simulation {
        let grid = Grid::new(nx, nx, nx);
        let mut sim = Simulation::new(grid.clone());
        let mut e = Species::new("electron", -1.0, 1.0);
        // weight chosen so ω_p·dt ≈ 0.2 (resolved plasma oscillation)
        let ppc = 2000.0 / grid.cells() as f32;
        let w = 0.13 / ppc;
        e.load_uniform(&grid, 2000, 0.05, (0.0, 0.0, 0.0), w, 11);
        // ions colocated with electrons: exact initial neutrality
        let mut ion = Species::new("ion", 1.0, crate::constants::ION_MASS_RATIO);
        ion.dx = e.dx.clone();
        ion.dy = e.dy.clone();
        ion.dz = e.dz.clone();
        ion.cell = e.cell.clone();
        ion.ux = vec![0.0; e.len()];
        ion.uy = vec![0.0; e.len()];
        ion.uz = vec![0.0; e.len()];
        ion.w = e.w.clone();
        sim.add_species(e);
        sim.add_species(ion);
        sim
    }

    #[test]
    fn step_counts_and_time_advance() {
        let mut sim = neutral_pair_sim(4);
        assert_eq!(sim.step_count(), 0);
        let stats = sim.run(3);
        assert_eq!(sim.step_count(), 3);
        assert_eq!(stats.pushed, 3 * sim.particle_count());
        assert!((sim.time() - 3.0 * sim.grid.dt as f64).abs() < 1e-9);
    }

    #[test]
    fn particles_stay_valid_over_many_steps() {
        let mut sim = neutral_pair_sim(4);
        sim.run(25);
        for s in &sim.species {
            s.validate(&sim.grid).unwrap();
        }
    }

    #[test]
    fn gauss_law_residual_stays_small() {
        let mut sim = neutral_pair_sim(4);
        let r0 = sim.gauss_residual();
        assert!(r0 < 1e-5, "neutral start: {r0}");
        sim.run(20);
        let r1 = sim.gauss_residual();
        assert!(
            r1 < 5e-4,
            "charge-conserving deposition must keep Gauss residual bounded: {r1}"
        );
    }

    #[test]
    fn total_energy_bounded_in_thermal_plasma() {
        let mut sim = neutral_pair_sim(5);
        let e0 = sim.energies().total();
        sim.run(50);
        let e1 = sim.energies().total();
        let drift = ((e1 - e0) / e0).abs();
        assert!(drift < 0.05, "energy drift {drift} over 50 steps");
    }

    #[test]
    fn sorting_does_not_change_physics() {
        let mut a = neutral_pair_sim(4);
        let mut b = neutral_pair_sim(4);
        b.sort_order = Some(SortOrder::Standard);
        b.sort_interval = 5;
        a.run(12);
        b.run(12);
        let ea = a.energies();
        let eb = b.energies();
        assert!(
            ((ea.total() - eb.total()) / ea.total()).abs() < 1e-3,
            "sorted and unsorted runs diverged: {} vs {}",
            ea.total(),
            eb.total()
        );
    }

    #[test]
    fn strategies_agree_at_simulation_level() {
        let totals: Vec<f64> =
            [Strategy::Auto, Strategy::Guided, Strategy::Manual, Strategy::AdHoc]
                .iter()
                .map(|&strat| {
                    let mut sim = neutral_pair_sim(4);
                    sim.strategy = strat;
                    sim.run(10);
                    sim.energies().total()
                })
                .collect();
        for w in totals.windows(2) {
            assert!(
                ((w[0] - w[1]) / w[0]).abs() < 1e-3,
                "strategy-dependent physics: {totals:?}"
            );
        }
    }

    #[test]
    fn laser_driver_injects_field_energy() {
        let grid = Grid::new(16, 4, 4);
        let mut sim = Simulation::new(grid);
        sim.laser = Some(LaserDriver { plane: 0, amplitude: 0.1, omega: 0.5 });
        assert_eq!(sim.energies().total(), 0.0);
        sim.run(30);
        let (fe, fb) = sim.fields.energies();
        assert!(fe > 0.0 && fb > 0.0, "antenna must radiate: E={fe}, B={fb}");
    }

    #[test]
    fn threaded_step_matches_serial_physics() {
        let mut a = neutral_pair_sim(4);
        let mut b = neutral_pair_sim(4);
        b.configure_scatter(4, ScatterMode::Duplicated);
        let threads = pk::Threads::new(4);
        let sa = a.run(10);
        let sb = b.run_on(&threads, 10);
        assert_eq!(sa.pushed, sb.pushed);
        for s in &b.species {
            s.validate(&b.grid).unwrap();
        }
        // deposition order differs at f64 rounding level, so the field
        // feedback (and with it trajectories) can drift by a few ulps —
        // physics must agree tightly but not bitwise
        let (ea, eb) = (a.energies().total(), b.energies().total());
        assert!(
            ((ea - eb) / ea).abs() < 1e-4,
            "threaded step diverged from serial: {ea} vs {eb}"
        );
    }

    #[test]
    fn tiled_step_without_engine_is_a_typed_error_not_a_panic() {
        // the torn-invariant path: a tiled step entered with no engine
        // must degrade to a typed StepError (multi-tenant servers step
        // malformed jobs through try_step_on and quarantine on Err)
        let mut sim = neutral_pair_sim(4);
        assert!(matches!(
            sim.step_tiled(&Serial),
            Err(crate::StepError::TileEngineMissing)
        ));
        // the sim is still steppable through the untiled path afterwards
        let stats = sim.try_step().expect("untiled step succeeds");
        assert!(stats.pushed > 0);
    }

    #[test]
    fn scatter_modes_agree_at_simulation_level() {
        let mut a = neutral_pair_sim(4);
        a.configure_scatter(4, ScatterMode::Atomic);
        let mut b = neutral_pair_sim(4);
        b.configure_scatter(4, ScatterMode::Duplicated);
        a.run(10);
        b.run(10);
        let (ea, eb) = (a.energies().total(), b.energies().total());
        assert!(((ea - eb) / ea).abs() < 1e-6, "{ea} vs {eb}");
    }
}
