//! Property tests for the PIC core's physics invariants.

use pk::atomic::ScatterMode;
use proptest::prelude::*;
use vpic_core::accumulate::{
    deposit_rho_node, div_j_node, segment_weights, Accumulator, SLOTS,
};
use vpic_core::field::FieldArray;
use vpic_core::grid::Grid;
use vpic_core::interp::load_interpolators;
use vpic_core::push::push_species;
use vpic_core::species::Species;
use vsimd::Strategy as VecStrategy;

fn offset() -> impl Strategy<Value = f32> {
    -1.0f32..1.0
}

proptest! {
    /// Villasenor–Buneman continuity holds for ANY within-cell segment:
    /// Δρ + dt·∇·J = 0 at every node.
    #[test]
    fn continuity_for_arbitrary_segments(
        x0 in offset(), y0 in offset(), z0 in offset(),
        x1 in offset(), y1 in offset(), z1 in offset(),
        qw in -3.0f32..3.0,
    ) {
        let g = Grid::new(4, 4, 4);
        let cell = g.voxel(1, 1, 1);
        let mut rho0 = vec![0.0f64; g.cells()];
        let mut rho1 = vec![0.0f64; g.cells()];
        deposit_rho_node(&g, &mut rho0, cell, x0, y0, z0, qw);
        deposit_rho_node(&g, &mut rho1, cell, x1, y1, z1, qw);
        let mut acc = Accumulator::new(g.cells(), 1, ScatterMode::Atomic);
        acc.deposit_segment(0, cell, x0, y0, z0, x1, y1, z1, qw);
        let mut f = FieldArray::new(g.clone());
        acc.unload(&mut f);
        for v in 0..g.cells() {
            let lhs = (rho1[v] - rho0[v]) / g.dt as f64;
            let rhs = -div_j_node(&f, v);
            prop_assert!((lhs - rhs).abs() < 2e-4, "node {v}: {lhs} vs {rhs}");
        }
    }

    /// Segment weights are linear in charge and antisymmetric under
    /// trajectory reversal.
    #[test]
    fn weights_linear_and_antisymmetric(
        x0 in offset(), y0 in offset(), z0 in offset(),
        x1 in offset(), y1 in offset(), z1 in offset(),
    ) {
        let fwd = segment_weights(x0, y0, z0, x1, y1, z1, 1.0);
        let back = segment_weights(x1, y1, z1, x0, y0, z0, 1.0);
        let double = segment_weights(x0, y0, z0, x1, y1, z1, 2.0);
        for s in 0..SLOTS {
            prop_assert!((fwd[s] + back[s]).abs() < 1e-5, "slot {s} not antisymmetric");
            prop_assert!((double[s] - 2.0 * fwd[s]).abs() < 1e-5, "slot {s} not linear");
        }
    }

    /// The Boris rotation conserves |u| exactly (to fp tolerance) in a
    /// pure magnetic field of any orientation.
    #[test]
    fn boris_conserves_momentum_magnitude(
        bx in -0.5f32..0.5, by in -0.5f32..0.5, bz in -0.5f32..0.5,
        ux in -1.0f32..1.0, uy in -1.0f32..1.0, uz in -1.0f32..1.0,
    ) {
        let g = Grid::new(3, 3, 3);
        let mut f = FieldArray::new(g.clone());
        f.bx.fill(bx);
        f.by.fill(by);
        f.bz.fill(bz);
        let interps = load_interpolators(&f);
        let mut s = Species::new("e", -1.0, 1.0);
        s.push_particle(0.0, 0.0, 0.0, 0, ux, uy, uz, 1.0);
        let u0 = (ux as f64).hypot(uy as f64).hypot(uz as f64);
        let acc = Accumulator::new(g.cells(), 1, ScatterMode::Atomic);
        push_species(VecStrategy::Auto, &g, &mut s, &interps, &acc);
        let u1 = (s.ux[0] as f64).hypot(s.uy[0] as f64).hypot(s.uz[0] as f64);
        prop_assert!((u1 - u0).abs() < 1e-5 * (1.0 + u0), "{u0} vs {u1}");
    }

    /// The mover always leaves particles with in-range offsets and valid
    /// cells, for arbitrary (CFL-bounded) momenta.
    #[test]
    fn mover_preserves_invariants(
        x in offset(), y in offset(), z in offset(),
        ux in -5.0f32..5.0, uy in -5.0f32..5.0, uz in -5.0f32..5.0,
        cell_idx in 0usize..27,
    ) {
        let g = Grid::new(3, 3, 3);
        let f = FieldArray::new(g.clone());
        let interps = load_interpolators(&f);
        let mut s = Species::new("e", -1.0, 1.0);
        s.push_particle(x, y, z, cell_idx as u32, ux, uy, uz, 1.0);
        let acc = Accumulator::new(g.cells(), 1, ScatterMode::Atomic);
        push_species(VecStrategy::Auto, &g, &mut s, &interps, &acc);
        prop_assert!(s.validate(&g).is_ok(), "{:?}", s.validate(&g));
    }

    /// All four push strategies produce matching momenta on random
    /// particle sets (tolerance: different-but-valid fp orderings).
    #[test]
    fn strategies_agree_on_random_states(seed in any::<u64>()) {
        let g = Grid::new(4, 4, 4);
        let mut f = FieldArray::new(g.clone());
        for (i, e) in f.ex.iter_mut().enumerate() {
            *e = 0.005 * ((i as f32) * 0.3).sin();
        }
        f.bz.fill(0.1);
        let interps = load_interpolators(&f);
        let make = || {
            let mut s = Species::new("e", -1.0, 1.0);
            s.load_uniform(&g, 64, 0.1, (0.0, 0.0, 0.0), 1.0, seed);
            s
        };
        let mut reference = make();
        let acc = Accumulator::new(g.cells(), 1, ScatterMode::Atomic);
        push_species(VecStrategy::Auto, &g, &mut reference, &interps, &acc);
        for strat in [VecStrategy::Guided, VecStrategy::Manual, VecStrategy::AdHoc] {
            let mut s = make();
            let acc = Accumulator::new(g.cells(), 1, ScatterMode::Atomic);
            push_species(strat, &g, &mut s, &interps, &acc);
            for i in 0..s.len() {
                prop_assert!((s.ux[i] - reference.ux[i]).abs() < 1e-5, "{strat} ux[{i}]");
                prop_assert!((s.uy[i] - reference.uy[i]).abs() < 1e-5, "{strat} uy[{i}]");
            }
        }
    }

    /// Interpolated E is continuous across shared cell faces for random
    /// field content.
    #[test]
    fn interpolation_continuous_across_faces(seed in any::<u64>()) {
        let g = Grid::new(4, 4, 4);
        let mut f = FieldArray::new(g.clone());
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 40) as f32 / 16777216.0) - 0.5
        };
        for v in 0..g.cells() {
            f.ex[v] = next();
            f.ey[v] = next();
            f.ez[v] = next();
        }
        let interps = load_interpolators(&f);
        let v = g.voxel(1, 2, 1);
        let vy = g.neighbor(v, (0, 1, 0));
        for &z in &[-0.7f32, 0.0, 0.7] {
            let top = interps[v].e_at(0.0, 1.0, z).0;
            let bottom = interps[vy].e_at(0.0, -1.0, z).0;
            prop_assert!((top - bottom).abs() < 1e-5, "ex mismatch at z={z}");
        }
    }
}
