//! # vpic2 — facade crate
//!
//! Re-exports every subsystem of the VPIC 2.0 performance-portability
//! reproduction under one roof. See the workspace `README.md` for the
//! architecture overview and `DESIGN.md` for the paper-to-crate map.

pub use ckpt;
pub use cluster;
pub use memsim;
pub use pk;
pub use psort;
pub use rajaperf;
pub use serve;
pub use telemetry;
pub use tuner;
pub use vpic_core as core;
pub use vsimd;
