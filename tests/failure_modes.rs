//! Failure injection and degenerate inputs: the library must either
//! handle edge cases correctly or refuse loudly — never corrupt silently.

use vpic2::core::{Deck, Grid, Simulation, Species};
use vpic2::psort::{sort_pairs, SortOrder};

#[test]
fn single_cell_grid_runs() {
    let grid = Grid::new(1, 1, 1);
    let mut sim = Simulation::new(grid.clone());
    let mut e = Species::new("e", -1.0, 1.0);
    e.load_uniform(&grid, 10, 0.05, (0.0, 0.0, 0.0), 0.01, 1);
    sim.add_species(e);
    sim.run(5);
    sim.species[0].validate(&grid).unwrap();
    assert_eq!(sim.step_count(), 5);
}

#[test]
fn zero_particle_simulation_is_fine() {
    let mut sim = Simulation::new(Grid::new(4, 4, 4));
    let stats = sim.run(10);
    assert_eq!(stats.pushed, 0);
    assert_eq!(sim.energies().total(), 0.0);
}

#[test]
fn empty_species_sorts_and_validates() {
    let grid = Grid::new(2, 2, 2);
    let mut s = Species::new("e", -1.0, 1.0);
    for order in SortOrder::fig7_set(4) {
        s.sort(order);
    }
    s.validate(&grid).unwrap();
    assert_eq!(s.kinetic_energy(), 0.0);
    assert_eq!(s.momentum(), (0.0, 0.0, 0.0));
}

#[test]
#[should_panic(expected = "Courant")]
fn unstable_timestep_is_rejected() {
    let _ = Grid::new(8, 8, 8).with_dt(5.0);
}

#[test]
#[should_panic(expected = "at least one cell")]
fn zero_extent_grid_is_rejected() {
    let _ = Grid::new(0, 4, 4);
}

#[test]
#[should_panic(expected = "extent mismatch")]
fn mismatched_sort_inputs_are_rejected() {
    let mut keys = vec![1u32, 2, 3];
    let mut vals = vec![0u8; 2];
    sort_pairs(SortOrder::Strided, &mut keys, &mut vals);
}

#[test]
fn relativistic_particles_stay_subluminal() {
    // extreme momentum: velocity saturates below c, mover stays in range
    let grid = Grid::new(4, 4, 4);
    let mut sim = Simulation::new(grid.clone());
    let mut s = Species::new("e", -1.0, 1.0);
    s.push_particle(0.0, 0.0, 0.0, 0, 1000.0, 0.0, 0.0, 1.0);
    sim.add_species(s);
    sim.run(10);
    let sp = &sim.species[0];
    sp.validate(&grid).unwrap();
    let gamma = sp.gamma(0);
    let v = sp.ux[0] / gamma;
    assert!(v < 1.0, "v = {v} must stay below c");
    assert!(gamma > 999.0);
}

#[test]
fn deck_with_single_ppc_still_neutral() {
    let sim = Deck::uniform(4, 4, 4, 1).build();
    let q: f64 = sim.species.iter().map(|s| s.charge()).sum();
    assert!(q.abs() < 1e-9);
}

#[test]
fn decomposition_rejects_zero_ranks() {
    let result = std::panic::catch_unwind(|| {
        vpic2::cluster::Decomposition::new((8, 8, 8), 0)
    });
    assert!(result.is_err());
}

#[test]
fn network_model_handles_zero_messages_and_bytes() {
    let net = vpic2::cluster::systems::selene().network;
    assert_eq!(net.exchange_time(0, 1e9), 0.0);
    assert!(net.message_time(0.0) > 0.0, "latency floor remains");
}
