//! Checkpoint/restart's two contracts, end to end:
//!
//! 1. **Bit-identical resume** — for any deck configuration, checkpoint
//!    at step k, restore, run to step n: the result is indistinguishable
//!    from the uninterrupted run, including with the adaptive tuner
//!    armed (the resumed run continues the recorded schedule exactly).
//! 2. **No silent divergence** — every injected fault (truncation at any
//!    byte, any single-bit flip, a crash mid-write, a worker-pool panic
//!    mid-step) yields a *typed* error or a clean fallback to the
//!    previous good snapshot; a restore never silently produces a
//!    different simulation.

use proptest::prelude::*;
use vpic2::ckpt;
use vpic2::ckpt::RestoreError;
use vpic2::core::tune::ScheduleEntry;
use vpic2::core::{Deck, Simulation, TuneDriver};
use vpic2::pk::atomic::ScatterMode;
use vpic2::psort::SortOrder;
use vpic2::tuner::{Config, Tuner};
use vpic2::vsimd::Strategy as VecStrategy;

fn assert_bit_identical(a: &Simulation, b: &Simulation) {
    assert_eq!(a.step_count(), b.step_count(), "step counts diverged");
    let fbits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(fbits(&a.fields.ex), fbits(&b.fields.ex), "Ex diverged");
    assert_eq!(fbits(&a.fields.ey), fbits(&b.fields.ey), "Ey diverged");
    assert_eq!(fbits(&a.fields.ez), fbits(&b.fields.ez), "Ez diverged");
    assert_eq!(fbits(&a.fields.bx), fbits(&b.fields.bx), "Bx diverged");
    assert_eq!(fbits(&a.fields.by), fbits(&b.fields.by), "By diverged");
    assert_eq!(fbits(&a.fields.bz), fbits(&b.fields.bz), "Bz diverged");
    assert_eq!(a.species.len(), b.species.len());
    for (sa, sb) in a.species.iter().zip(&b.species) {
        assert_eq!(sa.cell, sb.cell, "cell arrays diverged");
        assert_eq!(fbits(&sa.dx), fbits(&sb.dx));
        assert_eq!(fbits(&sa.dy), fbits(&sb.dy));
        assert_eq!(fbits(&sa.dz), fbits(&sb.dz));
        assert_eq!(fbits(&sa.ux), fbits(&sb.ux));
        assert_eq!(fbits(&sa.uy), fbits(&sb.uy));
        assert_eq!(fbits(&sa.uz), fbits(&sb.uz));
        assert_eq!(fbits(&sa.w), fbits(&sb.w));
    }
}

/// Build one of the random deck configurations the resume property
/// sweeps: deck family, sorting order and cadence, scatter replicas —
/// every knob that changes bit patterns.
fn build(weibel: bool, ppc: usize, order_tag: usize, interval: usize, workers: usize) -> Simulation {
    let mut sim = if weibel {
        Deck::weibel(5, 5, 5, ppc, 0.3).build()
    } else {
        Deck::lpi(8, 4, 4, ppc).build()
    };
    sim.sort_order = match order_tag {
        0 => None,
        1 => Some(SortOrder::Standard),
        2 => Some(SortOrder::Strided),
        _ => Some(SortOrder::TiledStrided { tile: 4 }),
    };
    sim.sort_interval = interval;
    if workers > 1 {
        sim.configure_scatter(workers, ScatterMode::Duplicated);
    }
    sim
}

proptest! {
    /// Checkpoint at k, restore, run to n — bit-identical to running
    /// straight through, for arbitrary deck configurations.
    #[test]
    fn restore_resumes_bit_identically(
        weibel in any::<bool>(),
        ppc in 2usize..5,
        order_tag in 0usize..4,
        interval in 1usize..6,
        workers in 1usize..4,
        k in 1usize..8,
        extra in 1usize..8,
    ) {
        let n = k + extra;
        let mut full = build(weibel, ppc, order_tag, interval, workers);
        full.run(n);
        let mut half = build(weibel, ppc, order_tag, interval, workers);
        half.run(k);
        let bytes = half.checkpoint_bytes();
        let mut resumed = Simulation::restore_bytes(&bytes).expect("restore");
        resumed.run(extra);
        assert_bit_identical(&full, &resumed);
    }

    /// Same resume contract with the *parallel field pipeline* armed:
    /// threaded execution, a non-Auto vectorization strategy, and
    /// replicated scatter. The persistent interpolator array and unload
    /// scratch are derived state — a restored run rebuilds them on its
    /// first step and must land on exactly the bits of the
    /// uninterrupted run.
    #[test]
    fn restore_resumes_bit_identically_with_parallel_field_pipeline(
        strat_tag in 1usize..4,
        pool_workers in 2usize..5,
        k in 1usize..6,
        extra in 1usize..6,
    ) {
        let build = |/* fresh sim per run */| {
            let mut sim = Deck::weibel(5, 5, 5, 4, 0.3).build();
            sim.strategy = VecStrategy::ALL[strat_tag];
            sim.configure_scatter(pool_workers, ScatterMode::Duplicated);
            sim
        };
        let pool = vpic2::pk::Threads::new(pool_workers);
        let n = k + extra;
        let mut full = build();
        full.run_on(&pool, n);
        let mut half = build();
        half.run_on(&pool, k);
        let bytes = half.checkpoint_bytes();
        let mut resumed = Simulation::restore_bytes(&bytes).expect("restore");
        resumed.run_on(&pool, extra);
        assert_bit_identical(&full, &resumed);
    }

    /// Every prefix truncation of a snapshot fails with a typed error —
    /// never an `Ok` carrying partial state.
    #[test]
    fn every_truncation_is_typed(keep_permille in 0u32..1000) {
        let mut sim = Deck::weibel(4, 4, 4, 3, 0.3).build();
        sim.run(2);
        let bytes = sim.checkpoint_bytes();
        let keep = (bytes.len() * keep_permille as usize) / 1000;
        match Simulation::restore_bytes(&ckpt::faults::truncated(&bytes, keep)) {
            Err(
                RestoreError::Truncated
                | RestoreError::BadCrc { .. }
                | RestoreError::SchemaDrift(_)
                | RestoreError::VersionMismatch { .. },
            ) => {}
            Err(e) => panic!("untyped error for truncation at {keep}: {e:?}"),
            Ok(_) => panic!("truncation at {keep}/{} restored silently", bytes.len()),
        }
    }

    /// Any single flipped bit fails typed: the CRC (or strict decode)
    /// catches it; restore never silently diverges.
    #[test]
    fn every_bit_flip_is_typed(pos_permille in 0u32..1000, bit in 0u8..8) {
        let mut sim = Deck::weibel(4, 4, 4, 3, 0.3).build();
        sim.run(2);
        let bytes = sim.checkpoint_bytes();
        let byte = (bytes.len() * pos_permille as usize) / 1000;
        let byte = byte.min(bytes.len() - 1);
        match Simulation::restore_bytes(&ckpt::faults::with_bit_flipped(&bytes, byte, bit)) {
            Err(_) => {}
            Ok(restored) => {
                // flips that survive must land in dead bytes only —
                // the restored state has to be exactly the original
                assert_bit_identical(&sim, &restored);
            }
        }
    }
}

#[test]
fn crash_mid_write_falls_back_to_the_previous_snapshot() {
    let dir = std::env::temp_dir().join(format!("vpic-crash-write-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snap.vpck");

    let mut sim = Deck::weibel(4, 4, 4, 3, 0.3).build();
    sim.run(3);
    sim.checkpoint_to(&path).unwrap();
    sim.run(2);
    // the process dies mid-write of the *next* snapshot: only a torn
    // temp file is left, the good snapshot is untouched
    let next = sim.checkpoint_bytes();
    ckpt::faults::crash_mid_write(&path, &next, next.len() / 2).unwrap();
    let (restored, fell_back) = Simulation::restore_from_path(&path).unwrap();
    assert!(!fell_back, "primary snapshot is still the good one");
    assert_eq!(restored.step_count(), 3);

    // now the primary itself is corrupt: fallback to the rotated copy
    sim.checkpoint_to(&path).unwrap(); // rotates step-3 snapshot to .prev
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, ckpt::faults::with_bit_flipped(&bytes, bytes.len() / 2, 3)).unwrap();
    let (restored, fell_back) = Simulation::restore_from_path(&path).unwrap();
    assert!(fell_back, "corrupt primary must fall back");
    assert_eq!(restored.step_count(), 3);

    // both gone: the primary's typed error surfaces
    std::fs::remove_file(ckpt::file::prev_path(&path)).unwrap();
    match Simulation::restore_from_path(&path) {
        Err(RestoreError::BadCrc { .. } | RestoreError::SchemaDrift(_)) => {}
        other => panic!("expected the primary's typed error, got {:?}", other.err()),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn worker_panic_mid_step_is_recoverable_and_resumable() {
    // a lane panic during a pooled dispatch surfaces as a typed
    // DispatchPanic...
    let pool = vpic2::pk::WorkerPool::new(3);
    let dp = ckpt::faults::kill_dispatch(&pool, 1);
    assert_eq!(dp.panicked_lanes, 1);
    // ...and the pool survives to run the recovery path: restore the
    // last checkpoint and finish the run on the same pool
    let mut sim = Deck::weibel(4, 4, 4, 3, 0.3).build();
    sim.run(3);
    let snapshot = sim.checkpoint_bytes();
    let mut full = Deck::weibel(4, 4, 4, 3, 0.3).build();
    full.run(8);
    let mut recovered = Simulation::restore_bytes(&snapshot).expect("restore after panic");
    for _ in 0..5 {
        recovered.try_step().expect("serial steps cannot lane-panic");
    }
    assert_bit_identical(&full, &recovered);
    // the pool still dispatches fine after the earlier panic
    let counter = std::sync::atomic::AtomicUsize::new(0);
    pool.run(&|_| {
        counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    });
    assert_eq!(counter.into_inner(), 3);
}

#[test]
fn tuner_armed_resume_continues_the_schedule_exactly() {
    let arms = vec![
        Config::unsorted(VecStrategy::Auto, ScatterMode::Atomic),
        Config {
            order: Some(SortOrder::Standard),
            interval: 4,
            strategy: VecStrategy::Guided,
            scatter: ScatterMode::Atomic,
            tile: None,
        },
        Config {
            order: Some(SortOrder::Strided),
            interval: 3,
            strategy: VecStrategy::Manual,
            scatter: ScatterMode::Atomic,
            tile: None,
        },
    ];
    let epoch = 3;
    let (k, n) = (7usize, 16usize); // interrupt mid-epoch, mid-exploration

    // tuned run, interrupted at k and resumed from the checkpoint
    let mut tuned = Deck::weibel(4, 4, 4, 3, 0.3).build();
    tuned.set_tuner(TuneDriver::new(Tuner::new(arms.clone(), epoch)));
    tuned.run(k);
    let bytes = tuned.checkpoint_bytes();
    let mut resumed = Simulation::restore_bytes(&bytes).expect("tuner-armed restore");
    assert_eq!(
        resumed.tuner().expect("driver restored").state(),
        tuned.tuner().expect("driver armed").state(),
        "restored driver must carry the engine state, epoch accumulators and schedule"
    );
    resumed.run(n - k);

    // arm choices depend on wall-clock measurements, so the oracle is
    // the run's own recorded schedule: replaying it on a fresh deck
    // must reproduce the resumed run bit-for-bit, with the pre- and
    // post-restore entries forming one continuous history
    let driver = resumed.take_tuner().expect("driver still armed");
    let schedule: Vec<ScheduleEntry> = driver.schedule().to_vec();
    assert!(schedule.windows(2).all(|w| w[0].step < w[1].step), "schedule not continuous");
    assert!(
        schedule.iter().any(|e| e.step >= k as u64),
        "the resumed run must have kept tuning past the restore point"
    );
    let mut replayed = Deck::weibel(4, 4, 4, 3, 0.3).build();
    for step in 0..n as u64 {
        for e in schedule.iter().filter(|e| e.step == step) {
            replayed.apply_tune_config(&e.config, e.workers);
        }
        replayed.step();
    }
    assert_bit_identical(&resumed, &replayed);
}

