//! Tier-1: real multi-rank stepping (DESIGN §12).
//!
//! The correctness oracle for `cluster::MultiRankSim`: for any rank
//! count, the gathered global state — fields, particles, and the energy
//! ledger — is bit-identical to the single-rank run at every checked
//! step, and the executed speedup curve agrees with the closed-form
//! overlap model within the tolerance EXPERIMENTS.md documents.

use cluster::{systems, MultiRankSim};
use vpic_core::{Deck, Simulation};

fn assert_gather_matches(gathered: &Simulation, reference: &Simulation, what: &str) {
    let fields = [
        ("ex", &gathered.fields.ex, &reference.fields.ex),
        ("ey", &gathered.fields.ey, &reference.fields.ey),
        ("ez", &gathered.fields.ez, &reference.fields.ez),
        ("bx", &gathered.fields.bx, &reference.fields.bx),
        ("by", &gathered.fields.by, &reference.fields.by),
        ("bz", &gathered.fields.bz, &reference.fields.bz),
        ("jx", &gathered.fields.jx, &reference.fields.jx),
        ("jy", &gathered.fields.jy, &reference.fields.jy),
        ("jz", &gathered.fields.jz, &reference.fields.jz),
    ];
    for (name, a, b) in fields {
        assert_eq!(a.len(), b.len(), "{what}: {name} length");
        for v in 0..a.len() {
            assert_eq!(a[v].to_bits(), b[v].to_bits(), "{what}: {name}[{v}]");
        }
    }
    assert_eq!(gathered.species.len(), reference.species.len(), "{what}: species");
    for (si, (sa, sb)) in gathered.species.iter().zip(&reference.species).enumerate() {
        assert_eq!(sa.cell, sb.cell, "{what}: species {si} cells");
        for p in 0..sa.len() {
            assert_eq!(sa.dx[p].to_bits(), sb.dx[p].to_bits(), "{what}: s{si} dx[{p}]");
            assert_eq!(sa.dy[p].to_bits(), sb.dy[p].to_bits(), "{what}: s{si} dy[{p}]");
            assert_eq!(sa.dz[p].to_bits(), sb.dz[p].to_bits(), "{what}: s{si} dz[{p}]");
            assert_eq!(sa.ux[p].to_bits(), sb.ux[p].to_bits(), "{what}: s{si} ux[{p}]");
            assert_eq!(sa.uy[p].to_bits(), sb.uy[p].to_bits(), "{what}: s{si} uy[{p}]");
            assert_eq!(sa.uz[p].to_bits(), sb.uz[p].to_bits(), "{what}: s{si} uz[{p}]");
            assert_eq!(sa.w[p].to_bits(), sb.w[p].to_bits(), "{what}: s{si} w[{p}]");
        }
    }
    // the energy ledger closes the loop: identical state → identical sums
    let (ea, eb) = (gathered.energies(), reference.energies());
    assert_eq!(ea.field_e.to_bits(), eb.field_e.to_bits(), "{what}: field_e");
    assert_eq!(ea.field_b.to_bits(), eb.field_b.to_bits(), "{what}: field_b");
    assert_eq!(ea.kinetic.len(), eb.kinetic.len(), "{what}: kinetic arity");
    for (k, (ka, kb)) in ea.kinetic.iter().zip(&eb.kinetic).enumerate() {
        assert_eq!(ka.to_bits(), kb.to_bits(), "{what}: kinetic[{k}]");
    }
}

/// Fields + particles + energy ledger bit-identical to the single-rank
/// run at every checked step, for every rank count in the sweep.
#[test]
fn gathered_state_bit_identical_across_rank_counts() {
    let mut reference = Deck::weibel(8, 8, 8, 4, 0.3).build();
    let net = systems::selene().network;
    let mut clusters: Vec<MultiRankSim> =
        [1, 2, 4, 8].iter().map(|&n| MultiRankSim::new(&reference, n, net)).collect();
    for step in 1..=5 {
        reference.step();
        for mr in &mut clusters {
            mr.step();
            assert_gather_matches(
                &mr.gather(),
                &reference,
                &format!("{} ranks @ step {step}", mr.ranks()),
            );
        }
    }
}

/// Executed speedup agrees with the closed-form overlap model
/// `T(N) = T(1)/N + exposed(N)` within a factor of two, and the overlap
/// schedule hides at least half the modeled exchange time on the
/// LLC-resident Weibel deck.
///
/// Tolerance rationale (documented in EXPERIMENTS.md): the model assumes
/// perfect compute scaling, while the executed step pays the halo-shell
/// sweep overhead ((l+2)³ vs l³ cells) and whatever scheduling noise the
/// shared CI host injects — a factor-2 band holds comfortably on release
/// and debug builds while still catching a broken overlap schedule,
/// which shows up as an order-of-magnitude exposure regression.
#[test]
fn executed_speedup_tracks_overlap_model() {
    let reference = Deck::weibel(16, 16, 16, 4, 0.3).build();
    let net = systems::selene().network;
    let steps = 3usize;
    let mut t1 = f64::NAN;
    let mut hidden_sum = 0.0;
    let mut modeled_sum = 0.0;
    for ranks in [1usize, 2, 4, 8] {
        let mut mr = MultiRankSim::new(&reference, ranks, net);
        mr.run(1); // warmup
        let mut step_s = 0.0;
        let mut modeled = 0.0;
        let mut exposed = 0.0;
        for _ in 0..steps {
            let (_, _, t) = mr.step();
            step_s += t.step_s;
            modeled += t.modeled_exchange_s;
            exposed += t.exposed_exchange_s;
        }
        let mean_step = step_s / steps as f64;
        if ranks == 1 {
            t1 = mean_step;
            assert_eq!(modeled, 0.0, "one rank exchanges nothing");
            continue;
        }
        hidden_sum += modeled - exposed;
        modeled_sum += modeled;
        let speedup_exec = t1 / mean_step;
        let model_step = t1 / ranks as f64 + exposed / (steps as f64 * ranks as f64);
        let speedup_model = t1 / model_step;
        let ratio = speedup_exec / speedup_model;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "{ranks} ranks: executed speedup {speedup_exec:.2}x vs model \
             {speedup_model:.2}x (ratio {ratio:.2}) outside the documented tolerance"
        );
    }
    assert!(modeled_sum > 0.0, "the multi-rank sweep must exchange");
    let hidden_fraction = hidden_sum / modeled_sum;
    assert!(
        hidden_fraction >= 0.5,
        "interior/boundary overlap must hide ≥50% of modeled exchange: {hidden_fraction:.2}"
    );
}

/// Checkpoint/restore of a mid-run cluster resumes bit-identically —
/// the tier-1 face of the property suite in `crates/cluster/tests`.
#[test]
fn midrun_cluster_checkpoint_resumes_bit_identical() {
    let reference = Deck::weibel(8, 8, 8, 4, 0.3).build();
    let mut live = MultiRankSim::new(&reference, 4, systems::selene().network);
    live.run(2);
    let snap = live.checkpoint_bytes();
    let mut resumed = MultiRankSim::restore_bytes(&snap).expect("restore");
    live.run(3);
    resumed.run(3);
    assert_gather_matches(&resumed.gather(), &live.gather(), "resumed vs uninterrupted");
}
