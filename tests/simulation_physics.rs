//! Cross-crate integration: full simulations stay physical under every
//! combination of the paper's tuning knobs (strategy, sorting, scatter
//! mode, decomposition).

use vpic2::cluster::exchange::ClusterSim;
use vpic2::core::Deck;
use vpic2::pk::atomic::ScatterMode;
use vpic2::psort::SortOrder;
use vpic2::vsimd::Strategy;

#[test]
fn uniform_deck_conserves_energy_and_charge() {
    let mut sim = Deck::uniform(8, 8, 8, 8).build();
    let q0: f64 = sim.species.iter().map(|s| s.charge()).sum();
    let e0 = sim.energies().total();
    sim.run(40);
    let q1: f64 = sim.species.iter().map(|s| s.charge()).sum();
    let e1 = sim.energies().total();
    assert!((q1 - q0).abs() < 1e-9, "charge is exactly conserved");
    assert!(
        ((e1 - e0) / e0).abs() < 0.05,
        "energy drift {:.3}%",
        100.0 * ((e1 - e0) / e0).abs()
    );
    assert!(sim.gauss_residual() < 1e-3);
    for s in &sim.species {
        s.validate(&sim.grid).unwrap();
    }
}

#[test]
fn every_strategy_and_sort_combination_agrees() {
    // the paper's whole premise: strategy and sorting are performance
    // knobs with no effect on the physics
    let reference = {
        let mut sim = Deck::lpi(12, 6, 6, 8).build();
        sim.run(15);
        sim.energies().total()
    };
    for strategy in Strategy::ALL {
        for order in [None, Some(SortOrder::Standard), Some(SortOrder::Strided)] {
            let mut sim = Deck::lpi(12, 6, 6, 8).build();
            sim.strategy = strategy;
            sim.sort_order = order;
            sim.sort_interval = 5;
            sim.run(15);
            let e = sim.energies().total();
            let rel = ((e - reference) / reference).abs();
            assert!(
                rel < 2e-2,
                "{strategy}/{order:?}: energy diverged by {rel:.2e}"
            );
        }
    }
}

#[test]
fn scatter_modes_agree_through_a_full_run() {
    let run_with = |mode| {
        let mut sim = Deck::weibel(6, 6, 8, 8, 0.3).build();
        sim.configure_scatter(4, mode);
        sim.run(20);
        sim.energies().total()
    };
    let a = run_with(ScatterMode::Atomic);
    let d = run_with(ScatterMode::Duplicated);
    assert!(((a - d) / a).abs() < 1e-6, "{a} vs {d}");
}

#[test]
fn decomposed_run_is_bit_identical_to_single_domain() {
    let mut plain = Deck::uniform(8, 8, 8, 6).build();
    let mut decomposed = ClusterSim::new(Deck::uniform(8, 8, 8, 6).build(), 16);
    let mut total_migrants = 0;
    for _ in 0..10 {
        plain.step();
        let (_, m) = decomposed.step();
        total_migrants += m.migrants;
    }
    assert_eq!(
        plain.energies().total(),
        decomposed.sim.energies().total(),
        "rank emulation must not perturb physics"
    );
    for (a, b) in plain.species.iter().zip(&decomposed.sim.species) {
        assert_eq!(a.cell, b.cell);
        assert_eq!(a.ux, b.ux);
    }
    assert!(total_migrants > 0, "particles do cross rank boundaries");
}

#[test]
fn lpi_deck_heats_plasma_and_stays_stable() {
    let mut sim = Deck::lpi(24, 6, 6, 8).build();
    let ke0: f64 = sim.energies().kinetic.iter().sum();
    sim.run(80);
    let snap = sim.energies();
    let ke1: f64 = snap.kinetic.iter().sum();
    assert!(ke1 > ke0, "laser must heat the plasma");
    assert!(ke1.is_finite() && snap.field_e.is_finite());
    for s in &sim.species {
        s.validate(&sim.grid).unwrap();
    }
}

#[test]
fn weibel_converts_kinetic_to_magnetic_energy() {
    let mut sim = Deck::weibel(10, 10, 10, 12, 0.4).build();
    let ke0: f64 = sim.energies().kinetic.iter().sum();
    sim.run(80);
    let snap = sim.energies();
    assert!(snap.field_b > 1e-8, "B field must grow: {}", snap.field_b);
    let ke1: f64 = snap.kinetic.iter().sum();
    assert!(ke1 < ke0, "field energy comes from the beams");
}
