//! Cross-crate integration: the sorting pipeline end to end — patterns →
//! sorts → structural verification → kernel execution → hardware model.

use vpic2::memsim::trace::GatherScatterSpec;
use vpic2::memsim::{platform, CpuModel, GpuModel};
use vpic2::psort::gather_scatter::{run_parallel, run_serial};
use vpic2::psort::{patterns, sort_pairs, verify, SortOrder};
use vpic2::pk::prelude::*;

#[test]
fn full_pipeline_all_orders_all_engines() {
    let unique = 4096;
    let reps = 32;
    let keys0 = patterns::repeated_keys(unique, reps, 42);
    let values: Vec<f64> = (0..keys0.len()).map(|i| 1.0 + (i % 5) as f64).collect();
    let table: Vec<f64> = (0..unique).map(|i| (i as f64).sqrt()).collect();
    let stencil = patterns::five_point_stencil(64);
    let reference = run_serial(&keys0, &values, &table, &stencil);

    let a100 = platform::by_name("A100").unwrap();
    let epyc = platform::by_name("EPYC 7763").unwrap();
    for order in SortOrder::fig7_set(128) {
        let mut keys = keys0.clone();
        let mut vals = values.clone();
        sort_pairs(order, &mut keys, &mut vals);
        // structure
        match order {
            SortOrder::Standard => assert!(verify::is_standard_order(&keys)),
            SortOrder::Strided => assert!(verify::is_strided_order(&keys)),
            SortOrder::TiledStrided { tile } => {
                assert!(verify::is_tiled_strided_order(&keys, tile))
            }
            SortOrder::Random => {}
        }
        // host kernel correctness (serial + threaded)
        let serial = run_serial(&keys, &vals, &table, &stencil);
        let threaded = run_parallel(&Threads::new(4), &keys, &vals, &table, &stencil);
        for i in 0..unique {
            assert!((serial[i] - reference[i]).abs() < 1e-9, "{order}");
            assert!((threaded[i] - reference[i]).abs() < 1e-9, "{order} threaded");
        }
        // hardware models accept the stream and produce finite costs
        let spec = GatherScatterSpec {
            keys: &keys,
            table_len: unique,
            elem_bytes: 8,
            stencil: &stencil,
            stream_bytes: 8.0,
            flops: 7.0,
            atomic: true,
        };
        let g = GpuModel::scaled(a100.clone(), 64.0).run(&spec);
        let c = CpuModel::scaled(epyc.clone(), 64.0).run(&spec);
        assert!(g.time > 0.0 && g.time.is_finite(), "{order} gpu");
        assert!(c.time > 0.0 && c.time.is_finite(), "{order} cpu");
        assert!(g.bandwidth() > 1e9, "{order}: gpu bandwidth sane");
    }
}

#[test]
fn species_sort_feeds_the_push_model() {
    use vpic2::core::Deck;
    use vpic2::memsim::push::{gpu_push, PushSpec};
    let mut sim = Deck::uniform(12, 12, 12, 8).build();
    sim.run(3);
    let model = GpuModel::new(platform::by_name("A100").unwrap());
    let mut times = Vec::new();
    for order in SortOrder::fig7_set(256) {
        sim.sort_particles(order);
        let cells = &sim.species[1].cell;
        let cost = gpu_push(&model, &PushSpec::vpic(cells, sim.grid.cells()));
        assert!(cost.cost.time > 0.0);
        times.push((order.name(), cost.cost.time));
    }
    // the orders must not all model identically (sorting matters)
    let min = times.iter().map(|t| t.1).fold(f64::INFINITY, f64::min);
    let max = times.iter().map(|t| t.1).fold(0.0, f64::max);
    assert!(max / min > 1.2, "sorting should change modelled cost: {times:?}");
}

#[test]
fn pk_sort_by_key_is_the_substrate_for_both_algorithms() {
    // the sorts in psort bottom out in pk::sort_by_key — check the stack
    // agrees with a from-scratch reference on tandem sorting
    let keys0 = patterns::repeated_keys(100, 11, 5);
    let mut keys: Vec<u64> = keys0.iter().map(|&k| k as u64).collect();
    let mut vals: Vec<usize> = (0..keys.len()).collect();
    sort_by_key(&mut keys, &mut vals);
    let mut want: Vec<(u64, usize)> =
        keys0.iter().enumerate().map(|(i, &k)| (k as u64, i)).collect();
    want.sort(); // stable by (key, original index)
    for (i, &(k, v)) in want.iter().enumerate() {
        assert_eq!(keys[i], k);
        assert_eq!(vals[i], v);
    }
}
