//! The serving layer's two headline contracts, tested end to end:
//!
//! 1. **Preemption is bit-transparent** — a job parked at any point and
//!    resumed, with slices landing on different worker pools, finishes
//!    in a state bit-identical to an uninterrupted single-space run.
//!    Property-tested for plain, tiled, and tuner-armed tenants (the
//!    tuned oracle is schedule replay: timing decides *which* arms
//!    commit, but the recorded schedule replayed on a fresh deck must
//!    reproduce the tuned run exactly).
//! 2. **Failure is contained per tenant** — a corrupted parked blob
//!    (`ckpt::faults`) or a panic thrown inside a tenant's step
//!    quarantines that job only; the rest of the fleet completes.

use proptest::prelude::*;
use vpic2::core::{Deck, Simulation, TilePolicy};
use vpic2::serve::{JobId, JobPhase, JobSpec, ServeError, ServePolicy, Server};

fn assert_bit_identical(a: &Simulation, b: &Simulation) {
    assert_eq!(a.step_count(), b.step_count(), "step counts diverged");
    let fbits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(fbits(&a.fields.ex), fbits(&b.fields.ex), "Ex diverged");
    assert_eq!(fbits(&a.fields.ey), fbits(&b.fields.ey), "Ey diverged");
    assert_eq!(fbits(&a.fields.ez), fbits(&b.fields.ez), "Ez diverged");
    assert_eq!(fbits(&a.fields.bx), fbits(&b.fields.bx), "Bx diverged");
    assert_eq!(fbits(&a.fields.by), fbits(&b.fields.by), "By diverged");
    assert_eq!(fbits(&a.fields.bz), fbits(&b.fields.bz), "Bz diverged");
    assert_eq!(a.species.len(), b.species.len());
    for (sa, sb) in a.species.iter().zip(&b.species) {
        assert_eq!(sa.cell, sb.cell, "cell arrays diverged");
        assert_eq!(fbits(&sa.dx), fbits(&sb.dx));
        assert_eq!(fbits(&sa.dy), fbits(&sb.dy));
        assert_eq!(fbits(&sa.dz), fbits(&sb.dz));
        assert_eq!(fbits(&sa.ux), fbits(&sb.ux));
        assert_eq!(fbits(&sa.uy), fbits(&sb.uy));
        assert_eq!(fbits(&sa.uz), fbits(&sb.uz));
        assert_eq!(fbits(&sa.w), fbits(&sb.w));
    }
    let ea = a.energies();
    let eb = b.energies();
    assert_eq!(ea.field_e.to_bits(), eb.field_e.to_bits(), "field E energy diverged");
    assert_eq!(ea.field_b.to_bits(), eb.field_b.to_bits(), "field B energy diverged");
    let ka: Vec<u64> = ea.kinetic.iter().map(|x| x.to_bits()).collect();
    let kb: Vec<u64> = eb.kinetic.iter().map(|x| x.to_bits()).collect();
    assert_eq!(ka, kb, "kinetic energies diverged");
}

fn deck() -> Deck {
    Deck::weibel(5, 5, 5, 3, 0.3)
}

fn policy(pools: Vec<usize>, quantum: u32) -> ServePolicy {
    ServePolicy {
        max_jobs: 16,
        max_bytes: 256 << 20,
        max_resident: 2,
        pools,
        quantum,
        tuner_epoch: 2,
        per_job_metrics: false,
    }
}

/// Park `id`, tolerating a job that already ran to completion (small
/// step budgets can finish inside `park_after` rounds — the preempt-at-
/// zero cases still cover the park-before-first-step corner).
fn park_unless_done(srv: &mut Server, id: JobId) {
    match srv.park(id) {
        Ok(()) | Err(ServeError::NotRunnable(_)) => {}
        Err(e) => panic!("park failed: {e}"),
    }
}

/// Run `spec` on a server with the given pools, parking it after
/// `park_after` rounds, and return the restored final simulation.
fn serve_one(spec: JobSpec, pools: Vec<usize>, quantum: u32, park_after: u64) -> Simulation {
    let mut srv = Server::new(policy(pools, quantum));
    let id = srv.submit(spec).expect("admitted");
    for _ in 0..park_after {
        srv.run_round();
    }
    park_unless_done(&mut srv, id);
    let report = srv.run_until_done(1_000);
    assert_eq!(report.quarantined, 0, "job failed: {:?}", srv.status(id));
    assert_eq!(srv.status(id).unwrap().phase, JobPhase::Done);
    Simulation::restore_bytes(srv.final_blob(id).expect("final blob")).expect("final restore")
}

proptest! {
    /// Plain tenant: preempt at a random point, resume across a random
    /// pool mix — final state matches an uninterrupted serial run bit
    /// for bit.
    #[test]
    fn preempted_plain_job_is_bit_identical(
        steps in 3u64..10,
        quantum in 1u32..4,
        pool_a in 1usize..5,
        pool_b in 1usize..5,
        park_after in 0u64..4,
    ) {
        let mut reference = deck().build();
        reference.run(steps as usize);

        let spec = JobSpec::new(deck(), steps);
        let served = serve_one(spec, vec![pool_a, pool_b], quantum, park_after);
        assert_bit_identical(&reference, &served);
    }

    /// Tiled tenant: the park forces an untile → snapshot → retile
    /// round trip on top of the pool migration; still bit-identical.
    #[test]
    fn preempted_tiled_job_is_bit_identical(
        steps in 3u64..9,
        tile_cells in 1usize..80,
        max_hot in 1usize..3,
        compress in any::<bool>(),
        quantum in 1u32..4,
        park_after in 0u64..4,
    ) {
        let mut tile = TilePolicy::new(tile_cells);
        tile.compress = compress;
        tile.max_hot = max_hot;

        let mut reference = deck().build();
        reference.enable_tiling(tile.clone());
        reference.run(steps as usize);
        reference.disable_tiling();

        let mut spec = JobSpec::new(deck(), steps);
        spec.tile = Some(tile);
        let mut served = serve_one(spec, vec![2, 3], quantum, park_after);
        prop_assert!(served.is_tiled(), "final blob must preserve the tiling policy");
        served.disable_tiling();
        assert_bit_identical(&reference, &served);
    }

    /// Tuner-armed tenant: which arms commit depends on wall-clock
    /// timing, so the oracle is *schedule replay* — applying the
    /// recorded `(step, config, workers)` history to a fresh deck
    /// reproduces the served run exactly, preemption and all.
    #[test]
    fn preempted_tuned_job_replays_bit_identically(
        steps in 6u64..14,
        quantum in 1u32..4,
        park_after in 0u64..4,
    ) {
        let mut srv = Server::new(policy(vec![2, 1], quantum));
        let mut spec = JobSpec::new(deck(), steps);
        spec.tune = true;
        let id = srv.submit(spec).expect("admitted");
        for _ in 0..park_after {
            srv.run_round();
        }
        park_unless_done(&mut srv, id);
        srv.run_until_done(1_000);
        prop_assert_eq!(srv.status(id).unwrap().phase, JobPhase::Done);
        let served = Simulation::restore_bytes(srv.final_blob(id).unwrap()).expect("restore");

        let schedule = srv.tune_schedule(id).expect("tuned job records its schedule");
        prop_assert!(!schedule.is_empty());
        let mut replay = deck().build();
        for step in 0..steps {
            for e in schedule.iter().filter(|e| e.step == step) {
                replay.apply_tune_config(&e.config, e.workers);
            }
            replay.step();
        }
        assert_bit_identical(&replay, &served);
    }

    /// Corrupting a parked blob (truncation — the classic torn
    /// migration) quarantines exactly that job; its neighbor finishes.
    #[test]
    fn corrupt_parked_blob_quarantines_that_job_only(keep_permille in 0u32..999) {
        let mut srv = Server::new(policy(vec![2], 2));
        let victim = srv.submit(JobSpec::new(deck(), 8)).unwrap();
        let bystander = srv.submit(JobSpec::new(deck(), 8)).unwrap();
        srv.run_round();
        srv.park(victim).unwrap();
        {
            let blob = srv.parked_blob_mut(victim).expect("parked");
            let keep = (blob.len() * keep_permille as usize) / 1000;
            *blob = ckpt::faults::truncated(blob, keep);
        }
        let report = srv.run_until_done(1_000);
        prop_assert_eq!(report.quarantined, 1);
        prop_assert_eq!(report.completed, 1);
        let vs = srv.status(victim).unwrap();
        prop_assert_eq!(vs.phase, JobPhase::Quarantined);
        prop_assert!(vs.detail.contains("unreadable"), "detail: {}", vs.detail);
        prop_assert_eq!(srv.status(bystander).unwrap().phase, JobPhase::Done);
    }
}

/// A bit-flipped parked blob either fails typed (quarantine) or — when
/// the flip lands in dead bytes — restores to exactly the original
/// state and the job completes normally. Never a silent divergence.
#[test]
fn bit_flipped_parked_blob_is_typed_or_harmless() {
    for (byte_permille, bit) in [(10usize, 0u8), (250, 3), (500, 5), (900, 7)] {
        let mut srv = Server::new(policy(vec![2], 2));
        let reference = {
            let mut sim = deck().build();
            sim.run(6);
            sim
        };
        let id = srv.submit(JobSpec::new(deck(), 6)).unwrap();
        srv.run_round();
        srv.park(id).unwrap();
        {
            let blob = srv.parked_blob_mut(id).expect("parked");
            let byte = (blob.len() * byte_permille) / 1000;
            *blob = ckpt::faults::with_bit_flipped(blob, byte, bit);
        }
        srv.run_until_done(1_000);
        match srv.status(id).unwrap().phase {
            JobPhase::Quarantined => {}
            JobPhase::Done => {
                let served =
                    Simulation::restore_bytes(srv.final_blob(id).unwrap()).expect("restore");
                assert_bit_identical(&reference, &served);
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
}

/// A tenant whose step panics (tile spill into an uncreatable
/// directory: the parent is a regular file) is quarantined with the
/// panic text; the fleet keeps going. This is the graceful-degradation
/// contract: no tenant can take the server down.
#[test]
fn in_step_panic_quarantines_the_tenant_and_the_fleet_survives() {
    let dir = std::env::temp_dir().join(format!("vpic2-serve-panic-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let blocker = dir.join("not-a-dir");
    std::fs::write(&blocker, b"occupied").unwrap();

    let mut srv = Server::new(policy(vec![2], 2));
    let mut hostile = JobSpec::new(deck(), 8);
    // max_hot=1 over many tiles forces a spill on the first step, and
    // the spill directory cannot be created — the spill write panics
    let mut tile = TilePolicy::new(4);
    tile.max_hot = 1;
    tile.spill_dir = Some(blocker.join("spill"));
    hostile.tile = Some(tile);
    let hostile = srv.submit(hostile).unwrap();
    let healthy = srv.submit(JobSpec::new(deck(), 8)).unwrap();

    let report = srv.run_until_done(1_000);
    assert_eq!(report.quarantined, 1);
    assert_eq!(report.completed, 1);
    let hs = srv.status(hostile).unwrap();
    assert_eq!(hs.phase, JobPhase::Quarantined);
    assert!(hs.detail.contains("panic in step"), "detail: {}", hs.detail);
    assert_eq!(srv.status(healthy).unwrap().phase, JobPhase::Done);

    std::fs::remove_dir_all(&dir).ok();
}

/// Fleet warm start, observed end to end: after a tuned tenant commits,
/// the next tenant of the same deck class starts its exploration at the
/// fleet-committed arm (its schedule's first entry), not at the default
/// first arm — unless they already coincide.
#[test]
fn second_tenant_of_a_class_warm_starts_from_the_fleet_commit() {
    let mut srv = Server::new(policy(vec![2], 4));
    let mut first = JobSpec::new(deck(), 30);
    first.tune = true;
    let first = srv.submit(first).unwrap();
    srv.run_until_done(1_000);
    let committed = srv.tune_schedule(first).expect("first tenant tuned")
        .last()
        .expect("nonempty schedule")
        .config;

    let mut second = JobSpec::new(deck(), 30);
    second.tune = true;
    let second = srv.submit(second).unwrap();
    srv.run_until_done(1_000);
    let sched = srv.tune_schedule(second).expect("second tenant tuned");
    assert_eq!(
        sched.first().expect("nonempty").config,
        committed,
        "the fleet-committed arm must be explored first"
    );
}
