//! Counter-baseline semantics across a restore, in a dedicated binary:
//! these assertions are exact counts against the process-global telemetry
//! registry, so they must not share a process with other instrumented
//! simulation tests (and the scenarios below share one #[test] because
//! `telemetry::reset` is process-global too).

use vpic2::core::{Deck, Simulation};
use vpic2::telemetry;

#[test]
fn restore_carries_lifetime_counters_without_double_counting() {
    // --- same-process restore: totals must not jump -------------------
    let mut sim = Deck::weibel(4, 4, 4, 3, 0.3).build();
    telemetry::set_enabled(true);
    sim.run(4);
    let pushed_before = telemetry::counter("sim.particles_pushed");
    assert!(pushed_before > 0, "instrumented run must count pushes");
    let bytes = sim.checkpoint_bytes();

    // everything in the snapshot is already in the live counters, so
    // the lifetime total must not move
    let mut restored = Simulation::restore_bytes(&bytes).expect("restore");
    let after_restore = telemetry::counter("sim.particles_pushed");
    assert_eq!(pushed_before, after_restore, "restore double-counted lifetime counters");

    // windows opened across a restore stay monotonic and see only live
    // activity, never the adopted baseline
    let mark = telemetry::window_mark();
    let _ = Simulation::restore_bytes(&bytes).expect("second restore");
    let w = telemetry::window_since(&mark);
    assert_eq!(w.counter("sim.particles_pushed"), 0, "baselines leaked into a window");
    restored.run(1);
    let w = telemetry::window_since(&mark);
    assert_eq!(
        w.counter("sim.particles_pushed"),
        restored.particle_count() as u64,
        "window must report exactly the post-restore step's pushes"
    );
    // the lifetime total keeps growing on top of what came before
    assert_eq!(
        telemetry::counter("sim.particles_pushed"),
        pushed_before + restored.particle_count() as u64
    );
    // the restore itself is accounted: bytes_read counts the snapshot
    // twice (two restores above), live — not absorbed into the baseline
    assert!(telemetry::counter("ckpt.bytes_read") >= 2 * bytes.len() as u64);

    // --- fresh-process restore: history arrives as baselines ----------
    // simulate "another process wrote this": reset wipes the live
    // registry, then the snapshot's totals arrive purely as baselines
    let mut sim = Deck::weibel(4, 4, 4, 3, 0.3).build();
    sim.run(3);
    let bytes = sim.checkpoint_bytes();
    let pushed_total = telemetry::counter("sim.particles_pushed");

    telemetry::reset();
    assert_eq!(telemetry::counter("sim.particles_pushed"), 0);
    let mut restored = Simulation::restore_bytes(&bytes).expect("restore");
    assert_eq!(
        telemetry::counter("sim.particles_pushed"),
        pushed_total,
        "a fresh process must adopt the saved lifetime totals"
    );
    restored.run(1);
    telemetry::set_enabled(false);
    assert_eq!(
        telemetry::counter("sim.particles_pushed"),
        pushed_total + restored.particle_count() as u64,
        "post-restore work stacks on the carried history"
    );
}
