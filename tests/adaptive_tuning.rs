//! The adaptive tuner's core contract: tuning is an *observation* layer.
//! Arming it must never change the physics — a tuned run is bit-identical
//! to replaying its recorded per-epoch config schedule with fixed
//! settings — and its cache prior must agree with the `memsim` platform
//! model it is derived from.

use proptest::prelude::*;
use vpic2::core::tune::ScheduleEntry;
use vpic2::core::{Deck, Simulation, TuneDriver};
use vpic2::memsim::platform::by_name;
use vpic2::memsim::push::grid_fits_llc;
use vpic2::pk::atomic::ScatterMode;
use vpic2::psort::SortOrder;
use vpic2::tuner::{prior, Config, Tuner};
use vpic2::vsimd::Strategy as VecStrategy;

fn weibel() -> Simulation {
    Deck::weibel(4, 4, 4, 3, 0.3).build()
}

/// A small arm set that still exercises every knob the tuner can touch:
/// sort order, interval, strategy, and scatter mode.
fn arms() -> Vec<Config> {
    vec![
        Config::unsorted(VecStrategy::Auto, ScatterMode::Atomic),
        Config {
            order: Some(SortOrder::Standard),
            interval: 5,
            strategy: VecStrategy::Guided,
            scatter: ScatterMode::Atomic,
            tile: None,
        },
        Config {
            order: Some(SortOrder::TiledStrided { tile: 8 }),
            interval: 3,
            strategy: VecStrategy::Manual,
            scatter: ScatterMode::Duplicated,
            tile: None,
        },
        Config {
            order: Some(SortOrder::Strided),
            interval: 5,
            strategy: VecStrategy::AdHoc,
            scatter: ScatterMode::Atomic,
            tile: None,
        },
    ]
}

fn replay(schedule: &[ScheduleEntry], steps: usize) -> Simulation {
    let mut sim = weibel();
    for step in 0..steps as u64 {
        for e in schedule.iter().filter(|e| e.step == step) {
            sim.apply_tune_config(&e.config, e.workers);
        }
        sim.step();
    }
    sim
}

fn assert_bit_identical(a: &Simulation, b: &Simulation) {
    for (sa, sb) in a.species.iter().zip(&b.species) {
        assert_eq!(sa.cell, sb.cell, "cell arrays diverged");
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&sa.dx), bits(&sb.dx));
        assert_eq!(bits(&sa.dy), bits(&sb.dy));
        assert_eq!(bits(&sa.dz), bits(&sb.dz));
        assert_eq!(bits(&sa.ux), bits(&sb.ux));
        assert_eq!(bits(&sa.uy), bits(&sb.uy));
        assert_eq!(bits(&sa.uz), bits(&sb.uz));
    }
    let fbits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(fbits(&a.fields.ex), fbits(&b.fields.ex), "Ex diverged");
    assert_eq!(fbits(&a.fields.ey), fbits(&b.fields.ey), "Ey diverged");
    assert_eq!(fbits(&a.fields.ez), fbits(&b.fields.ez), "Ez diverged");
}

proptest! {
    /// For any epoch length and run length, a tuned run and a fixed-config
    /// replay of its recorded schedule produce bit-identical particle
    /// trajectories and fields: config swaps at epoch boundaries are the
    /// tuner's only effect on the simulation.
    #[test]
    fn tuned_run_replays_bit_identically(epoch in 2usize..5, extra in 0usize..7) {
        let arm_set = arms();
        // enough steps to explore every arm and run committed for a while
        let steps = arm_set.len() * epoch + epoch + extra;
        let mut tuned = weibel();
        tuned.set_tuner(TuneDriver::new(Tuner::new(arm_set, epoch)));
        for _ in 0..steps {
            tuned.step();
        }
        let driver = tuned.take_tuner().expect("driver armed");
        prop_assert!(!driver.schedule().is_empty());
        let replayed = replay(driver.schedule(), steps);
        assert_bit_identical(&tuned, &replayed);
    }
}

#[test]
fn committed_run_replays_bit_identically() {
    // the non-property pin: long enough to commit, with drift epochs after
    let epoch = 3;
    let arm_set = arms();
    let steps = arm_set.len() * epoch + 4 * epoch;
    let mut tuned = weibel();
    tuned.set_tuner(TuneDriver::new(Tuner::new(arm_set, epoch)));
    for _ in 0..steps {
        tuned.step();
    }
    let driver = tuned.take_tuner().unwrap();
    assert!(driver.epochs() >= 7);
    let replayed = replay(driver.schedule(), steps);
    assert_bit_identical(&tuned, &replayed);
}

#[test]
fn cache_prior_agrees_with_memsim_and_seeds_sorting_off() {
    // the deck used by `repro -- tune`, measured against real Table-1
    // platform data: when its grid footprint fits the LLC the prior must
    // start the tuner on a "sorting off" arm, and the predicate must be
    // the very one cluster::scaling uses for the superlinear regime
    let sim = Deck::weibel(8, 8, 8, 6, 0.4).build();
    let small = sim.grid.cells(); // 512 cells ≈ 216 KB: resident everywhere
    let large = 32 * 32 * 32; // ≈ 13.5 MB: spills the V100's 6 MB, fits a 40 MB A100
    for (name, cells, fits) in [
        ("EPYC 7763", small, true),
        ("V100", small, true),
        ("V100", large, false),
        ("A100", large, true),
        ("H100", 200 * 200 * 200, false),
    ] {
        let p = by_name(name).unwrap();
        assert_eq!(grid_fits_llc(&p, cells), fits, "{name}: {cells} cells");
        assert_eq!(prior::prefer_unsorted(&p, cells), fits, "prior must equal the predicate");
        let t = Tuner::new(arms(), 4).with_cache_prior(prior::prefer_unsorted(&p, cells));
        assert_eq!(
            t.current().order.is_none(),
            fits,
            "{name}: the prior must steer the first explored arm"
        );
    }
}
