//! The tiled execution path's central contract: streaming the step
//! tile-by-tile through a bounded, compressed, optionally disk-spilled
//! pool is **bit-identical** to the classic untiled step — for any tile
//! size, pool size, compression setting, vectorization strategy, and
//! worker count. Plus the engine's steady-state behavior: scratch
//! capacities stop growing after warmup (no per-step allocation), and
//! tuner arms can switch tiling on and off mid-run without perturbing
//! the physics.

use proptest::prelude::*;
use vpic2::core::{Deck, Simulation, TilePolicy};
use vpic2::pk::atomic::ScatterMode;
use vpic2::pk::prelude::*;
use vpic2::tuner::{Config, TileCfg};
use vpic2::vsimd::Strategy as VecStrategy;

fn assert_bit_identical(a: &Simulation, b: &Simulation) {
    assert_eq!(a.step_count(), b.step_count(), "step counts diverged");
    let fbits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(fbits(&a.fields.ex), fbits(&b.fields.ex), "Ex diverged");
    assert_eq!(fbits(&a.fields.ey), fbits(&b.fields.ey), "Ey diverged");
    assert_eq!(fbits(&a.fields.ez), fbits(&b.fields.ez), "Ez diverged");
    assert_eq!(fbits(&a.fields.bx), fbits(&b.fields.bx), "Bx diverged");
    assert_eq!(fbits(&a.fields.by), fbits(&b.fields.by), "By diverged");
    assert_eq!(fbits(&a.fields.bz), fbits(&b.fields.bz), "Bz diverged");
    assert_eq!(a.species.len(), b.species.len());
    for (sa, sb) in a.species.iter().zip(&b.species) {
        assert_eq!(sa.cell, sb.cell, "cell arrays diverged");
        assert_eq!(fbits(&sa.dx), fbits(&sb.dx));
        assert_eq!(fbits(&sa.dy), fbits(&sb.dy));
        assert_eq!(fbits(&sa.dz), fbits(&sb.dz));
        assert_eq!(fbits(&sa.ux), fbits(&sb.ux));
        assert_eq!(fbits(&sa.uy), fbits(&sb.uy));
        assert_eq!(fbits(&sa.uz), fbits(&sb.uz));
        assert_eq!(fbits(&sa.w), fbits(&sb.w));
    }
    // the energy ledger folds in array order, so after the particle
    // comparison above it must agree to the bit as well
    let ea = a.energies();
    let eb = b.energies();
    assert_eq!(ea.field_e.to_bits(), eb.field_e.to_bits(), "field E energy diverged");
    assert_eq!(ea.field_b.to_bits(), eb.field_b.to_bits(), "field B energy diverged");
    let ka: Vec<u64> = ea.kinetic.iter().map(|x| x.to_bits()).collect();
    let kb: Vec<u64> = eb.kinetic.iter().map(|x| x.to_bits()).collect();
    assert_eq!(ka, kb, "kinetic energies diverged");
}

/// The untiled reference: same deck, sort-free (canonical array order),
/// stepped serially. The untiled path is itself worker-count- and
/// strategy-invariant, so one serial reference covers every tiled
/// configuration.
fn reference(ppc: usize, strategy: VecStrategy, steps: usize) -> Simulation {
    let mut sim = Deck::weibel(6, 6, 6, ppc, 0.3).build();
    sim.sort_order = None;
    sim.strategy = strategy;
    sim.run(steps);
    sim
}

proptest! {
    /// The headline property: any (tile size, pool size, compression,
    /// strategy, worker count) streams to bit-identical state.
    #[test]
    fn tiled_is_bit_identical_to_untiled(
        ppc in 2usize..5,
        tile_cells in 1usize..300,
        max_hot in 1usize..4,
        compress in any::<bool>(),
        strat_tag in 0usize..4,
        workers in 1usize..9,
        steps in 3usize..8,
    ) {
        let strategy = match strat_tag {
            0 => VecStrategy::Auto,
            1 => VecStrategy::Guided,
            2 => VecStrategy::Manual,
            _ => VecStrategy::AdHoc,
        };
        let want = reference(ppc, strategy, steps);

        let mut tiled = Deck::weibel(6, 6, 6, ppc, 0.3).build();
        tiled.sort_order = None;
        tiled.strategy = strategy;
        let mut policy = TilePolicy::new(tile_cells);
        policy.compress = compress;
        policy.max_hot = max_hot;
        tiled.enable_tiling(policy);
        prop_assert!(tiled.is_tiled());
        let pool = Threads::new(workers);
        tiled.run_on(&pool, steps);
        tiled.disable_tiling();

        assert_bit_identical(&want, &tiled);
    }
}

#[test]
fn tiled_matches_untiled_with_duplicated_scatter() {
    let steps = 6;
    let mut want = Deck::weibel(6, 6, 6, 3, 0.3).build();
    want.sort_order = None;
    want.configure_scatter(4, ScatterMode::Duplicated);
    want.run(steps);

    let mut tiled = Deck::weibel(6, 6, 6, 3, 0.3).build();
    tiled.sort_order = None;
    tiled.configure_scatter(4, ScatterMode::Duplicated);
    tiled.enable_tiling(TilePolicy::new(32));
    tiled.run_on(&Threads::new(4), steps);
    tiled.disable_tiling();

    assert_bit_identical(&want, &tiled);
}

#[test]
fn spilled_tiles_step_bit_identically() {
    let dir = std::env::temp_dir().join(format!("vpic2-tile-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("spill dir");
    let steps = 5;
    let want = reference(3, VecStrategy::Auto, steps);

    let mut tiled = Deck::weibel(6, 6, 6, 3, 0.3).build();
    tiled.sort_order = None;
    let mut policy = TilePolicy::new(8);
    policy.max_hot = 1; // everything not in the single hot slot spills
    policy.spill_dir = Some(dir.clone());
    tiled.enable_tiling(policy);
    tiled.run(steps);
    let stats = tiled.tile_engine().expect("engine").stats();
    assert!(stats.spill_writes > 0, "spill store never exercised");
    assert!(stats.spill_reads > 0, "spilled tiles never read back");
    tiled.disable_tiling();
    std::fs::remove_dir_all(&dir).ok();

    assert_bit_identical(&want, &tiled);
}

/// Tile pool no-alloc steady state: once the engine has cycled every
/// tile through the pool a few times, its scratch capacities stop
/// growing — later steps recycle buffers instead of allocating.
#[test]
fn tile_pool_reaches_a_no_alloc_steady_state() {
    let mut sim = Deck::weibel(6, 6, 6, 4, 0.3).build();
    sim.sort_order = None;
    let mut policy = TilePolicy::new(24);
    policy.max_hot = 2;
    sim.enable_tiling(policy);
    // buffers migrate between pool slots, codec scratch, and the
    // pending/arrival queues via vector swaps, so capacity travels with
    // the buffer; an allocation-free steady state conserves the
    // *multiset* of capacities (a Vec's capacity never shrinks, and
    // growth would change the sorted profile)
    let profile = |sim: &Simulation| {
        let mut caps = sim.tile_engine().expect("engine").scratch_capacities();
        caps.sort_unstable();
        caps
    };
    // warmup: step until the profile has been flat for 10 consecutive
    // steps (every tile rotated through every pool slot, migrant queues
    // grown to cover the step-to-step flux) — deterministic, so the
    // plateau is always reached at the same step
    let mut warm = profile(&sim);
    let mut flat = 0;
    for _ in 0..120 {
        sim.step();
        let now = profile(&sim);
        if now == warm {
            flat += 1;
            if flat >= 10 {
                break;
            }
        } else {
            warm = now;
            flat = 0;
        }
    }
    assert!(flat >= 10, "scratch capacities never reached a steady state");
    for step in 0..6 {
        sim.step();
        assert_eq!(profile(&sim), warm, "scratch capacities grew after warmup (step {step})");
    }
    sim.disable_tiling();
}

/// Tuner arms can flip tiling on and off mid-run: the run stays
/// bit-identical to an untiled fixed-config run, and the engine follows
/// the arm's tile size and compression setting.
#[test]
fn tune_config_drives_tiling_without_perturbing_physics() {
    let want = reference(3, VecStrategy::Auto, 10);

    let mut sim = Deck::weibel(6, 6, 6, 3, 0.3).build();
    sim.sort_order = None;
    let mut defaults = TilePolicy::new(512);
    defaults.max_hot = 3;
    sim.set_tile_defaults(defaults);
    let base = Config::unsorted(VecStrategy::Auto, ScatterMode::Atomic);
    sim.run(3);
    // arm with a 16-cell uncompressed tile config
    let arm = Config { tile: Some(TileCfg { tile_cells: 16, compress: false }), ..base };
    sim.apply_tune_config(&arm, 1);
    assert!(sim.is_tiled());
    let engine = sim.tile_engine().expect("engine");
    assert_eq!(engine.policy().tile_cells, 16);
    assert!(!engine.policy().compress);
    assert_eq!(engine.policy().max_hot, 3, "pool defaults must carry into the arm's policy");
    sim.run(4);
    // re-applying the same arm must not rebuild the engine
    sim.apply_tune_config(&arm, 1);
    assert!(sim.is_tiled());
    // back to the untiled arm
    sim.apply_tune_config(&base, 1);
    assert!(!sim.is_tiled());
    sim.run(3);

    assert_bit_identical(&want, &sim);
}
