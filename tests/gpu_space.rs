//! The `SimGpu` execution space's two contracts, end to end:
//!
//! 1. **Bit-identity** — stepping a simulation on `SimGpu` produces
//!    exactly the bits of the `Serial` run (fields, particles, energy
//!    ledger) for any deck shape, sort order, vectorization strategy,
//!    and scatter mode. The modelled space reports `concurrency() == 1`
//!    and runs the same block/chunk/reduce schedule as `Serial`; cost
//!    charging happens strictly outside the kernel arithmetic.
//! 2. **Honest descriptors** — the platform table the model charges
//!    against is the committed Table 1 (`results/table1.json`), with the
//!    vendor microarchitectural constants (warp width, line and sector
//!    sizes) the paper's §5 GPU discussion relies on, and the
//!    problem-scaling helper never collapses the modelled LLC below one
//!    page.

use proptest::prelude::*;
use vpic2::core::Deck;
use vpic2::memsim::{platform, GpuModel};
use vpic2::pk::atomic::ScatterMode;
use vpic2::pk::{Serial, SimGpu};
use vpic2::psort::SortOrder;
use vpic2::vsimd::Strategy;

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Step twin simulations `steps` times — one on `Serial`, one on
/// `SimGpu` — and require bit-identical state everywhere we can observe.
fn assert_gpu_matches_serial(
    shape: (usize, usize, usize),
    ppc: usize,
    order: Option<SortOrder>,
    interval: usize,
    strategy: Strategy,
    scatter: ScatterMode,
    steps: usize,
) {
    let build = || {
        let mut sim = Deck::weibel(shape.0, shape.1, shape.2, ppc, 0.3).build();
        sim.strategy = strategy;
        sim.configure_scatter(1, scatter);
        sim.sort_order = order;
        sim.sort_interval = interval;
        sim
    };
    let mut serial = build();
    let mut gpu_sim = build();
    let gpu = SimGpu::scaled(platform::by_name("V100").unwrap(), 40.0);
    serial.run_on(&Serial, steps);
    gpu_sim.run_on(&gpu, steps);

    let what = format!(
        "{shape:?} ppc{ppc} {order:?}/{interval} {strategy:?} {scatter:?}"
    );
    for (name, a, b) in [
        ("ex", &serial.fields.ex, &gpu_sim.fields.ex),
        ("ey", &serial.fields.ey, &gpu_sim.fields.ey),
        ("ez", &serial.fields.ez, &gpu_sim.fields.ez),
        ("bx", &serial.fields.bx, &gpu_sim.fields.bx),
        ("by", &serial.fields.by, &gpu_sim.fields.by),
        ("bz", &serial.fields.bz, &gpu_sim.fields.bz),
        ("jx", &serial.fields.jx, &gpu_sim.fields.jx),
        ("jy", &serial.fields.jy, &gpu_sim.fields.jy),
        ("jz", &serial.fields.jz, &gpu_sim.fields.jz),
    ] {
        assert_eq!(bits(a), bits(b), "{what}: field {name} diverged");
    }
    assert_eq!(serial.species.len(), gpu_sim.species.len(), "{what}");
    for (si, (sa, sb)) in serial.species.iter().zip(&gpu_sim.species).enumerate() {
        assert_eq!(sa.cell, sb.cell, "{what}: species {si} cells");
        for (f, a, b) in [
            ("dx", &sa.dx, &sb.dx),
            ("dy", &sa.dy, &sb.dy),
            ("dz", &sa.dz, &sb.dz),
            ("ux", &sa.ux, &sb.ux),
            ("uy", &sa.uy, &sb.uy),
            ("uz", &sa.uz, &sb.uz),
            ("w", &sa.w, &sb.w),
        ] {
            assert_eq!(bits(a), bits(b), "{what}: species {si} {f}");
        }
    }
    let ea = serial.energies();
    let eb = gpu_sim.energies();
    assert_eq!(ea.field_e.to_bits(), eb.field_e.to_bits(), "{what}: field_e");
    assert_eq!(ea.field_b.to_bits(), eb.field_b.to_bits(), "{what}: field_b");
    assert_eq!(ea.kinetic.len(), eb.kinetic.len(), "{what}");
    for (ka, kb) in ea.kinetic.iter().zip(&eb.kinetic) {
        assert_eq!(ka.to_bits(), kb.to_bits(), "{what}: kinetic");
    }

    // identical bits AND a real cost ledger: the run was actually charged
    assert!(gpu.modeled_time() > 0.0, "{what}: no cost charged");
    let records = gpu.records();
    assert!(
        records.iter().any(|r| r.label == "push"),
        "{what}: push never charged"
    );
    assert!(
        records.iter().any(|r| r.label == "field_solve"),
        "{what}: field solve never charged"
    );
    if order.is_some() {
        assert!(
            records.iter().any(|r| r.label == "sort"),
            "{what}: scheduled sort never charged"
        );
    }
}

/// Map a raw tag onto the GPU-relevant sort arms (including unsorted).
fn order_arm(tag: usize) -> Option<SortOrder> {
    [
        None,
        Some(SortOrder::Random),
        Some(SortOrder::Standard),
        Some(SortOrder::Strided),
        Some(SortOrder::TiledStrided { tile: 48 }),
    ][tag]
}

proptest! {
    /// The tentpole contract: `step_on(&SimGpu)` is bitwise `Serial` for
    /// random decks × sort orders × strategies × scatter modes.
    #[test]
    fn sim_gpu_is_bit_identical_to_serial(
        nx in 2usize..5, ny in 2usize..5, nz in 2usize..5,
        ppc in 1usize..4,
        order_tag in 0usize..5,
        interval in 1usize..3,
        strat_tag in 0usize..4,
        scatter_tag in 0usize..2,
    ) {
        let scatter =
            if scatter_tag == 0 { ScatterMode::Atomic } else { ScatterMode::Duplicated };
        assert_gpu_matches_serial(
            (nx, ny, nz),
            ppc,
            order_arm(order_tag),
            interval,
            Strategy::ALL[strat_tag],
            scatter,
            3,
        );
    }
}

#[test]
fn sim_gpu_bit_identity_on_every_table1_gpu() {
    // the per-platform spot check the sweep in `repro -- gpu` relies on
    for p in platform::gpus() {
        let mut serial = Deck::weibel(4, 4, 4, 2, 0.3).build();
        let mut gpu_sim = Deck::weibel(4, 4, 4, 2, 0.3).build();
        gpu_sim.sort_order = Some(SortOrder::Strided);
        serial.sort_order = Some(SortOrder::Strided);
        let gpu = SimGpu::scaled(p.clone(), 10.0);
        serial.run_on(&Serial, 4);
        gpu_sim.run_on(&gpu, 4);
        assert_eq!(
            bits(&serial.fields.ex),
            bits(&gpu_sim.fields.ex),
            "{}: ex diverged",
            p.name
        );
        for (sa, sb) in serial.species.iter().zip(&gpu_sim.species) {
            assert_eq!(sa.cell, sb.cell, "{}: cells diverged", p.name);
        }
        assert!(gpu.modeled_time() > 0.0, "{}: no cost charged", p.name);
    }
}

#[test]
fn scaled_model_floors_the_llc_at_one_page() {
    for p in platform::gpus() {
        // native scale keeps the descriptor's LLC...
        assert_eq!(
            GpuModel::scaled(p.clone(), 1.0).llc_bytes(),
            p.llc_bytes,
            "{}",
            p.name
        );
        // ...a moderate scale divides it...
        assert_eq!(
            GpuModel::scaled(p.clone(), 2.0).llc_bytes(),
            p.llc_bytes / 2,
            "{}",
            p.name
        );
        // ...and an absurd scale clamps at 4096 B instead of collapsing
        // the cache simulation to zero sets
        let floored = SimGpu::scaled(p.clone(), 1e15);
        assert_eq!(floored.model().llc_bytes(), 4096, "{}", p.name);
    }
}

/// Pull `key` out of a raw JSON text chunk (the vendored `serde_json`
/// shim is write-only, so the committed table is checked by string
/// search, the same technique `bench::regress` uses).
fn json_number(chunk: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\":");
    let i = chunk.find(&pat).unwrap_or_else(|| panic!("{key} missing"));
    let rest = chunk[i + pat.len()..].trim_start();
    let end = rest
        .find([',', '\n', '}'])
        .unwrap_or_else(|| panic!("{key} unterminated"));
    rest[..end].trim().parse().unwrap_or_else(|_| panic!("{key} not a number"))
}

#[test]
fn table1_json_matches_every_gpu_descriptor() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/table1.json");
    let text = std::fs::read_to_string(path).expect("committed results/table1.json");
    for p in platform::gpus() {
        let marker = format!("\"platform\": \"{}\"", p.name);
        let start = text
            .find(&marker)
            .unwrap_or_else(|| panic!("{} missing from table1.json", p.name));
        let chunk = &text[start..];
        let end = chunk[marker.len()..]
            .find("\"platform\"")
            .map(|i| i + marker.len())
            .unwrap_or(chunk.len());
        let chunk = &chunk[..end];
        let llc_mb = json_number(chunk, "llc_mb");
        let spec_bw = json_number(chunk, "spec_bw_gbps");
        assert!(
            (llc_mb - p.llc_bytes as f64 / (1 << 20) as f64).abs() < 1e-9,
            "{}: table llc {llc_mb} MB vs descriptor {} B",
            p.name,
            p.llc_bytes
        );
        assert!(
            (spec_bw - p.dram_bw / 1e9).abs() / spec_bw < 1e-9,
            "{}: table bw {spec_bw} GB/s vs descriptor {}",
            p.name,
            p.dram_bw
        );
    }
}

#[test]
fn gpu_descriptors_carry_the_vendor_microarchitecture() {
    use vpic2::memsim::platform::Vendor;
    for p in platform::gpus() {
        match p.vendor {
            Vendor::Nvidia => {
                assert_eq!(p.warp_width, 32, "{}", p.name);
                assert_eq!(p.line_bytes, 128, "{}", p.name);
                assert_eq!(p.sector_bytes, 32, "{}: sectored L2", p.name);
            }
            Vendor::Amd => {
                assert_eq!(p.warp_width, 64, "{}: CDNA wavefront", p.name);
                assert_eq!(p.line_bytes, 128, "{}", p.name);
                assert_eq!(p.sector_bytes, 64, "{}: CDNA granularity", p.name);
            }
            other => panic!("{}: unexpected GPU vendor {other:?}", p.name),
        }
    }
}
