//! The field pipeline's two contracts, end to end:
//!
//! 1. **Bit-identity** — every parallel/vectorized grid-side kernel
//!    (interpolator load, curl-E, curl-B, current unload) produces
//!    exactly the bits of its serial wrapped reference, for any grid
//!    shape (including degenerate `nx/ny/nz ∈ {1, 2}` where the affine
//!    interior region is empty), any `Strategy`, and any worker count
//!    1–8. Row-level work decomposition with disjoint writes means the
//!    schedule cannot reorder a single floating-point operation.
//! 2. **Zero steady-state allocation** — the interpolator array and the
//!    unload scratch buffer are warmed once and reused; their
//!    capacities never grow again over a run.

use proptest::prelude::*;
use vpic2::core::accumulate::Accumulator;
use vpic2::core::{load_interpolators, load_interpolators_into, Deck, FieldArray, Grid, InterpolatorArray};
use vpic2::pk::atomic::ScatterMode;
use vpic2::pk::{Serial, Threads};
use vpic2::vsimd::Strategy;

/// Deterministic scrambled field state: every array gets a distinct
/// smooth-but-nontrivial pattern so a single swapped neighbor or a
/// reordered reduction shows up as a bit flip.
fn scrambled(g: &Grid) -> FieldArray {
    let mut f = FieldArray::new(g.clone());
    let n = g.cells();
    for v in 0..n {
        let x = v as f32;
        f.ex[v] = (0.3 * x).sin();
        f.ey[v] = (0.5 * x).cos();
        f.ez[v] = (0.7 * x).sin() * 0.5;
        f.bx[v] = (0.2 * x).cos() * 0.25;
        f.by[v] = (0.9 * x).sin() * 0.125;
        f.bz[v] = (1.1 * x).cos() * 0.0625;
        f.jx[v] = (1.3 * x).sin() * 0.03125;
        f.jy[v] = (1.7 * x).cos() * 0.015_625;
        f.jz[v] = (1.9 * x).sin() * 0.25;
    }
    f
}

/// An accumulator with current deposited in every cell (replicated so
/// `Duplicated` mode has cross-replica sums to get right).
fn seeded_accumulator(g: &Grid, workers: usize) -> Accumulator {
    let mode = if workers > 1 { ScatterMode::Duplicated } else { ScatterMode::Atomic };
    let acc = Accumulator::new(g.cells(), workers, mode);
    for v in 0..g.cells() {
        let t = v as f32 * 0.37;
        let (x0, y0, z0) = (t.sin() * 0.4, t.cos() * 0.4, (2.0 * t).sin() * 0.4);
        let (x1, y1, z1) = ((t + 1.0).sin() * 0.4, (t + 1.0).cos() * 0.4, (2.0 * t + 1.0).sin() * 0.4);
        acc.deposit_segment(v % workers.max(1), v, x0, y0, z0, x1, y1, z1, 0.8);
    }
    acc
}

fn assert_fields_bitwise(a: &FieldArray, b: &FieldArray, what: &str) {
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    for (name, va, vb) in [
        ("ex", &a.ex, &b.ex),
        ("ey", &a.ey, &b.ey),
        ("ez", &a.ez, &b.ez),
        ("bx", &a.bx, &b.bx),
        ("by", &a.by, &b.by),
        ("bz", &a.bz, &b.bz),
        ("jx", &a.jx, &b.jx),
        ("jy", &a.jy, &b.jy),
        ("jz", &a.jz, &b.jz),
    ] {
        assert_eq!(bits(va), bits(vb), "{what}: {name} diverged");
    }
}

/// Map a raw tag to a dimension size. Degenerate sizes are deliberately
/// over-weighted: 1 and 2 are where the interior/boundary split
/// collapses to all-boundary.
fn dim(tag: usize) -> usize {
    [1, 1, 2, 2, 3, 4, 5, 6][tag]
}

proptest! {
    /// Curl kernels: every (strategy, worker-count) combination of the
    /// split interior/boundary sweep reproduces the serial wrapped
    /// reference bit for bit.
    #[test]
    fn field_solve_bit_identical_for_any_grid_and_workers(
        tx in 0usize..8, ty in 0usize..8, tz in 0usize..8,
        workers in 1usize..=8,
        strat_tag in 0usize..4,
    ) {
        let g = Grid::new(dim(tx), dim(ty), dim(tz));
        let strategy = Strategy::ALL[strat_tag];
        let mut reference = scrambled(&g);
        reference.advance_b_ref(0.5);
        reference.advance_e_ref();
        reference.advance_b_ref(0.5);

        let mut parallel = scrambled(&g);
        let pool = Threads::new(workers);
        parallel.advance_b_on(&pool, strategy, 0.5);
        parallel.advance_e_on(&pool, strategy);
        parallel.advance_b_on(&pool, strategy, 0.5);
        assert_fields_bitwise(&reference, &parallel, "threaded field solve");

        let mut serial = scrambled(&g);
        serial.advance_b_on(&Serial, strategy, 0.5);
        serial.advance_e_on(&Serial, strategy);
        serial.advance_b_on(&Serial, strategy, 0.5);
        assert_fields_bitwise(&reference, &serial, "serial-space field solve");
    }

    /// Interpolator load: the persistent-buffer parallel load matches
    /// the allocating serial reference bit for bit.
    #[test]
    fn interpolator_load_bit_identical(
        tx in 0usize..8, ty in 0usize..8, tz in 0usize..8,
        workers in 1usize..=8,
        strat_tag in 0usize..4,
    ) {
        let g = Grid::new(dim(tx), dim(ty), dim(tz));
        let f = scrambled(&g);
        let reference = load_interpolators(&f);

        let mut out = InterpolatorArray::new();
        let pool = Threads::new(workers);
        load_interpolators_into(&pool, Strategy::ALL[strat_tag], &f, &mut out);
        prop_assert_eq!(out.len(), reference.len());
        for (v, (a, b)) in reference.iter().zip(out.iter()).enumerate() {
            for c in 0..vpic2::core::interp::COEFFS {
                prop_assert_eq!(
                    a.0[c].to_bits(), b.0[c].to_bits(),
                    "cell {} coeff {} diverged", v, c
                );
            }
        }
    }

    /// Current unload: the deterministic edge-ownership gather is
    /// worker-count- and strategy-invariant bit for bit. (It is *not*
    /// required to match the scatter reference bitwise — that has a
    /// different summation tree — only to be schedule-independent;
    /// tolerance against the scatter oracle is covered by unit tests.)
    #[test]
    fn unload_bit_identical_across_workers(
        tx in 0usize..8, ty in 0usize..8, tz in 0usize..8,
        workers in 2usize..=8,
        strat_tag in 0usize..4,
    ) {
        let g = Grid::new(dim(tx), dim(ty), dim(tz));
        let strategy = Strategy::ALL[strat_tag];

        let mut acc = seeded_accumulator(&g, 1);
        let mut baseline = scrambled(&g);
        acc.unload_on(&Serial, Strategy::Auto, &mut baseline);

        let mut acc = seeded_accumulator(&g, workers);
        let mut threaded = scrambled(&g);
        acc.unload_on(&Threads::new(workers), strategy, &mut threaded);
        assert_fields_bitwise(&baseline, &threaded, "gather unload");
    }
}

/// The `Simulation`-owned interpolator array and unload scratch are
/// warmed on the first step and never reallocate afterwards.
#[test]
fn field_pipeline_is_allocation_free_after_warmup() {
    let mut sim = Deck::weibel(6, 6, 6, 4, 0.3).build();
    sim.configure_scatter(4, ScatterMode::Duplicated);
    sim.strategy = Strategy::Manual;
    let pool = Threads::new(4);
    sim.step_on(&pool); // warmup: scratch buffers grow to steady state
    let warm = sim.field_scratch_capacities();
    assert!(warm.0 > 0 && warm.1 > 0, "warmup should size the scratch: {warm:?}");
    for _ in 0..5 {
        sim.step_on(&pool);
        assert_eq!(
            sim.field_scratch_capacities(),
            warm,
            "field pipeline scratch reallocated after warmup"
        );
    }
}
