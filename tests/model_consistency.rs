//! Cross-crate integration: the hardware model's outputs stay consistent
//! with Table 1 and with each other at the scales the figures use.

use vpic2::memsim::platform;
use vpic2::memsim::push::{gpu_push, PushSpec, CELL_FOOTPRINT_BYTES};
use vpic2::memsim::roofline::Roofline;
use vpic2::memsim::stream::triad;
use vpic2::memsim::GpuModel;
use vpic2::psort::patterns::random_cells;

#[test]
fn triad_tracks_table1_on_all_platforms() {
    for p in platform::all() {
        let r = triad(&p, 1 << 18);
        assert!(
            (0.5..1.4).contains(&r.efficiency),
            "{}: {:.2}",
            p.name,
            r.efficiency
        );
    }
}

#[test]
fn platform_bandwidth_ordering_preserved_under_load() {
    // a non-trivial kernel must preserve Table 1's bandwidth ordering
    // between generations of the same vendor
    let cells = random_cells(60_000, 20_000, 9);
    let time_on = |name: &str| {
        let p = platform::by_name(name).unwrap();
        gpu_push(&GpuModel::scaled(p, 50.0), &PushSpec::vpic(&cells, 20_000))
            .cost
            .time
    };
    assert!(time_on("H100") < time_on("A100"));
    assert!(time_on("A100") < time_on("V100"));
    assert!(time_on("MI300A (GPU)") < time_on("MI100"));
}

#[test]
fn rooflines_bound_every_modelled_push() {
    let cells = random_cells(50_000, 30_000, 3);
    for p in platform::gpus() {
        let roof = Roofline::of(&p);
        let cost = gpu_push(&GpuModel::new(p.clone()), &PushSpec::vpic(&cells, 30_000)).cost;
        let s = roof.sample("test", &cost);
        assert!(
            s.attainable_fraction <= 1.05,
            "{}: model exceeded its own roofline ({:.2})",
            p.name,
            s.attainable_fraction
        );
    }
}

#[test]
fn cell_footprint_matches_paper_fig9_calibration() {
    // V100: 6 MB / 432 B ≈ 14.5k resident cells ≈ paper's 13,824 peak;
    // A100/V100 capacity ratio ≈ the paper's "about 6x"
    let v100 = platform::by_name("V100").unwrap();
    let a100 = platform::by_name("A100").unwrap();
    let v_cap = v100.llc_bytes / CELL_FOOTPRINT_BYTES;
    let a_cap = a100.llc_bytes / CELL_FOOTPRINT_BYTES;
    assert!((10_000..20_000).contains(&v_cap));
    let ratio = a_cap as f64 / v_cap as f64;
    assert!((5.5..7.5).contains(&ratio), "{ratio}");
}

#[test]
fn scaled_models_preserve_ratio_behaviour() {
    // running a problem at 1/64 size with a 1/64 cache must reproduce the
    // full-size cache behaviour (the scaling trick every figure relies on)
    let p = platform::by_name("A100").unwrap();
    let grid_full = 160_000usize; // ≈1.7x capacity
    let cells_full = random_cells(320_000, grid_full, 1);
    // atomic terms excluded: their hot-cell component is a fixed
    // serialization, not a per-particle cost (see cluster::scaling)
    let spec_full = PushSpec { atomic_ops: 0, ..PushSpec::vpic(&cells_full, grid_full) };
    let full = gpu_push(&GpuModel::new(p.clone()), &spec_full);
    let grid_small = grid_full / 8;
    let cells_small = random_cells(320_000 / 8, grid_small, 1);
    let spec_small = PushSpec { atomic_ops: 0, ..PushSpec::vpic(&cells_small, grid_small) };
    let small = gpu_push(&GpuModel::scaled(p, 8.0), &spec_small);
    let per_full = full.cost.time / 320_000.0;
    let per_small = small.cost.time / (320_000.0 / 8.0);
    let ratio = per_full / per_small;
    assert!(
        (0.5..2.0).contains(&ratio),
        "per-particle cost must be scale-stable: {ratio}"
    );
}

#[test]
fn strong_scaling_baseline_matches_push_model() {
    // Fig 10's per-point push time must be consistent with calling the
    // push model directly at the same local size
    use vpic2::cluster::scaling::{paper_global_grid, strong_scaling};
    use vpic2::cluster::systems;
    let sys = systems::sierra();
    let pts = strong_scaling(&sys, paper_global_grid(&sys), 16);
    for w in pts.windows(2) {
        // halving the local problem never makes a step *slower* than ~2x
        // the next point (monotone sanity)
        assert!(
            w[0].step_time > 0.8 * w[1].step_time,
            "step time must not explode as GPUs increase: {:?}",
            (w[0].gpus, w[0].step_time, w[1].gpus, w[1].step_time)
        );
    }
}
