//! Adaptive auto-tuning: arm a simulation with the tuner and watch it
//! explore the {sort order × interval × push strategy × scatter} space
//! online, then commit to the cheapest arm for the rest of the run.
//!
//! ```sh
//! cargo run --release --example autotune
//! ```

use vpic2::core::{Deck, TuneDriver};
use vpic2::memsim::platform::by_name;
use vpic2::pk::Serial;
use vpic2::tuner::{config_space, prior, Tuner, DEFAULT_INTERVALS};

fn main() {
    let deck = Deck::weibel(8, 8, 8, 6, 0.4);
    let mut sim = deck.build();
    let cells = sim.grid.cells();

    // cache-model prior: if the whole field grid fits in the platform's
    // last-level cache, gather/scatter stays cheap without sorting — start
    // the exploration from the unsorted arms
    let platform = by_name("EPYC 7763").unwrap();
    let start_unsorted = prior::prefer_unsorted(&platform, cells);
    println!(
        "deck: {} cells, {} particles; prior({}): {}",
        cells,
        sim.particle_count(),
        platform.name,
        if start_unsorted { "grid fits LLC, start unsorted" } else { "grid spills LLC, start sorting" }
    );

    // one epoch per arm, re-measure the 8 cheapest, then commit
    let arms = config_space(16, &DEFAULT_INTERVALS);
    let epoch_steps = 10;
    let tuner = Tuner::new(arms.clone(), epoch_steps)
        .with_cache_prior(start_unsorted)
        .with_refinement(8);
    sim.set_tuner(TuneDriver::new(tuner));

    // (#arms + refinement + a few committed epochs) worth of steps
    let steps = (arms.len() + 8 + 3) * epoch_steps;
    sim.run_on(&Serial, steps);

    let driver = sim.take_tuner().expect("tuner armed");
    let t = driver.tuner();
    println!("\n{} epochs ({} truncated by telemetry drops)", driver.epochs(), t.truncated_epochs());
    let (best, cost) = t.best().expect("measured arms");
    println!("committed: {} ({:.1} ns/particle amortized)", best.label(), cost);

    // the recorded schedule replays the run bit-identically: each entry is
    // the exact step a config took effect
    println!("\nschedule ({} changes):", driver.schedule().len());
    for entry in driver.schedule().iter().take(5) {
        println!("  step {:>4}: {}", entry.step, entry.config.label());
    }
    if driver.schedule().len() > 5 {
        println!("  ... and {} more", driver.schedule().len() - 5);
    }
    match t.committed() {
        Some(c) => println!("\nok: tuner committed to {}", c.label()),
        None => println!("\ntuner still exploring (raise `steps` to let it commit)"),
    }
}
