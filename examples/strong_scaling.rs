//! Strong-scaling exploration (paper §5.5): sweep GPU counts on the three
//! modelled systems and watch the cache-driven superlinear region appear
//! and then yield to communication.
//!
//! ```sh
//! cargo run --release --example strong_scaling
//! ```

use vpic2::cluster::exchange::ClusterSim;
use vpic2::cluster::scaling::{paper_global_grid, speedup_curve, strong_scaling};
use vpic2::cluster::systems;
use vpic2::core::Deck;

fn main() {
    // first, a *real* decomposed run: migration measured, physics intact
    let sim = Deck::uniform(12, 12, 12, 8).build();
    let mut cs = ClusterSim::new(sim, 8);
    let frac = cs.measure_migration(5);
    println!(
        "measured particle migration across 8 virtual ranks: {:.2}% per step\n",
        frac * 100.0
    );

    for sys in systems::all() {
        let grid = paper_global_grid(&sys);
        let points = strong_scaling(&sys, grid, 32);
        let curve = speedup_curve(&points);
        println!(
            "{} ({} / node of {}), grid {}x{}x{}:",
            sys.name, sys.gpus_per_node, sys.gpu, grid.0, grid.1, grid.2
        );
        println!(
            "  {:>6} {:>10} {:>8} {:>10} {:>9}",
            "GPUs", "speedup", "ideal", "step", "in-cache"
        );
        for (c, p) in curve.iter().zip(&points) {
            let marker = if c.1 > c.2 { "superlinear" } else { "" };
            println!(
                "  {:>6} {:>9.1}x {:>7.0}x {:>10.2?} {:>9} {}",
                c.0,
                c.1,
                c.2,
                std::time::Duration::from_secs_f64(p.step_time),
                p.grid_in_cache,
                marker
            );
        }
        println!();
    }
    println!("ok: superlinear regions driven by LLC capacity; roll-off driven by the network");
}
