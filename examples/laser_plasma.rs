//! Laser–plasma interaction with the paper's sorting study: run the LPI
//! deck under each particle ordering and compare push-kernel wall time on
//! this machine — physics must be identical, performance must not be.
//!
//! ```sh
//! cargo run --release --example laser_plasma
//! ```

use std::time::Instant;
use vpic2::core::Deck;
use vpic2::psort::SortOrder;

fn main() {
    let orders: [(&str, Option<SortOrder>); 4] = [
        ("unsorted", None),
        ("standard", Some(SortOrder::Standard)),
        ("strided", Some(SortOrder::Strided)),
        ("tiled-strided", Some(SortOrder::TiledStrided { tile: 128 })),
    ];

    println!("LPI deck, 24x8x8 cells, 16 ppc — push wall time by sort order\n");
    println!("{:<16} {:>10} {:>14} {:>12}", "order", "steps/s", "total energy", "crossings");
    let mut energies = Vec::new();
    for (name, order) in orders {
        let mut sim = Deck::lpi(24, 8, 8, 16).build();
        sim.sort_order = order;
        sim.sort_interval = 10;
        // warm up: let the laser establish itself
        sim.run(10);
        let t0 = Instant::now();
        let stats = sim.run(30);
        let dt = t0.elapsed().as_secs_f64();
        let e = sim.energies().total();
        energies.push(e);
        println!(
            "{:<16} {:>10.1} {:>14.6e} {:>12}",
            name,
            30.0 / dt,
            e,
            stats.crossings
        );
    }

    // sorting is a performance knob, never a physics knob
    for (i, e) in energies.iter().enumerate() {
        let rel = ((e - energies[0]) / energies[0]).abs();
        assert!(
            rel < 1e-2,
            "order {} changed the physics: {} vs {}",
            orders[i].0,
            e,
            energies[0]
        );
    }
    println!("\nok: all orderings produce the same plasma state");
    println!("(per-order GPU performance differences are the subject of `repro fig7`)");
}
