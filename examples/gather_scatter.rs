//! The gather-scatter microbenchmark (paper §5.4) end to end: generate
//! repeated keys, apply each sorting algorithm (verifying its structural
//! invariant), execute the kernel on the host, and model the bandwidth
//! each ordering would achieve on an A100 and an EPYC 7763.
//!
//! ```sh
//! cargo run --release --example gather_scatter
//! ```

use std::time::Instant;
use vpic2::memsim::trace::GatherScatterSpec;
use vpic2::memsim::{CpuModel, GpuModel};
use vpic2::psort::gather_scatter::run_serial;
use vpic2::psort::{patterns, sort_pairs, verify, SortOrder};

fn main() {
    let unique = 1 << 14;
    let reps = 100;
    let keys0 = patterns::repeated_keys(unique, reps, 7);
    let values: Vec<f64> = (0..keys0.len()).map(|i| 1.0 + (i % 9) as f64).collect();
    let table: Vec<f64> = (0..unique).map(|i| (i as f64 * 0.01).cos()).collect();
    println!(
        "{} elements, {} unique keys x{} repeats\n",
        keys0.len(),
        unique,
        reps
    );

    let reference = run_serial(&keys0, &values, &table, &[0]);
    let a100 = vpic2::memsim::platform::by_name("A100").unwrap();
    let epyc = vpic2::memsim::platform::by_name("EPYC 7763").unwrap();
    let scale = 1024.0; // paper-size working set : model ratio (table >> scaled LLC)

    println!(
        "{:<16} {:>10} {:>12} {:>14} {:>14}",
        "order", "sort ms", "host kernel", "A100 (model)", "EPYC (model)"
    );
    for order in SortOrder::fig7_set(256) {
        let mut keys = keys0.clone();
        let mut vals = values.clone();
        let t0 = Instant::now();
        sort_pairs(order, &mut keys, &mut vals);
        let sort_ms = t0.elapsed().as_secs_f64() * 1e3;
        // structural invariants
        match order {
            SortOrder::Standard => assert!(verify::is_standard_order(&keys)),
            SortOrder::Strided => assert!(verify::is_strided_order(&keys)),
            SortOrder::TiledStrided { tile } => {
                assert!(verify::is_tiled_strided_order(&keys, tile))
            }
            SortOrder::Random => {}
        }
        // host execution: result must match the reference exactly
        let t0 = Instant::now();
        let out = run_serial(&keys, &vals, &table, &[0]);
        let host_ms = t0.elapsed().as_secs_f64() * 1e3;
        for (o, r) in out.iter().zip(&reference) {
            assert!((o - r).abs() < 1e-9, "ordering changed the result");
        }
        // modelled platform bandwidths
        let spec = GatherScatterSpec {
            keys: &keys,
            table_len: unique,
            elem_bytes: 8,
            stencil: &[0],
            stream_bytes: 8.0,
            flops: 3.0,
            atomic: true,
        };
        let gpu_bw = GpuModel::scaled(a100.clone(), scale).run(&spec).bandwidth();
        let cpu_bw = CpuModel::scaled(epyc.clone(), scale).run(&spec).bandwidth();
        println!(
            "{:<16} {:>10.2} {:>10.2}ms {:>11.1} GB/s {:>11.1} GB/s",
            order.name(),
            sort_ms,
            host_ms,
            gpu_bw / 1e9,
            cpu_bw / 1e9
        );
    }
    println!("\nok: every ordering computes identical results; bandwidths differ by platform");
}
