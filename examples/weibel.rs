//! Weibel instability: counter-streaming electron beams filament and
//! convert kinetic energy into magnetic field energy — a classic plasma
//! micro-instability the PIC method must capture.
//!
//! ```sh
//! cargo run --release --example weibel
//! ```

use vpic2::core::energy::EnergyHistory;
use vpic2::core::Deck;

fn main() {
    // two beams at ±0.4c along z
    let deck = Deck::weibel(12, 12, 12, 16, 0.4);
    let mut sim = deck.build();
    println!(
        "Weibel deck: {} cells, {} particles (two beams + ions)",
        sim.grid.cells(),
        sim.particle_count()
    );

    let mut history = EnergyHistory::new();
    history.record(&sim);
    println!("{:>6} {:>14} {:>14} {:>14}", "step", "field B", "field E", "kinetic");
    for _ in 0..20 {
        sim.run(5);
        history.record(&sim);
        let e = history.entries.last().unwrap();
        println!(
            "{:>6} {:>14.5e} {:>14.5e} {:>14.5e}",
            sim.step_count(),
            e.field_b,
            e.field_e,
            e.kinetic.iter().sum::<f64>()
        );
    }

    // the instability signature: magnetic energy grows by orders of
    // magnitude from the noise floor, fed by beam kinetic energy
    let b = history.field_b_series();
    let b_start = b[1].1; // after one output interval (seed noise)
    let b_end = b.last().unwrap().1;
    println!("\nmagnetic field energy growth: {:.1e} -> {:.1e} ({:.0}x)", b_start, b_end, b_end / b_start);
    let ke_first: f64 = history.entries.first().unwrap().kinetic.iter().sum();
    let ke_last: f64 = history.entries.last().unwrap().kinetic.iter().sum();
    println!("beam kinetic energy: {ke_first:.4e} -> {ke_last:.4e}");
    println!("max total-energy drift: {:.3}%", 100.0 * history.max_drift());
    assert!(b_end > b_start, "Weibel filamentation must grow B");
    println!("ok: instability grew the magnetic field");
}
