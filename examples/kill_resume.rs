//! Crash-and-resume drill: run a Weibel deck with periodic checkpoints,
//! kill the process at an arbitrary point (CI sends SIGKILL at a random
//! delay), restore from the last good snapshot, and finish the run —
//! the final state must be bit-identical to an uninterrupted reference.
//!
//! ```sh
//! cargo run --release --example kill_resume -- reference
//! cargo run --release --example kill_resume -- run /tmp/ckpt-dir &
//! sleep 0.7; kill -9 $!
//! cargo run --release --example kill_resume -- resume /tmp/ckpt-dir
//! ```
//!
//! `reference` and `resume` both end with a `final=` line carrying the
//! bit patterns of the final energy ledger and a hash over every
//! particle and field array; diffing the two lines is the whole check.

use std::path::Path;
use std::time::Duration;
use vpic2::core::{Deck, Simulation};

const TOTAL_STEPS: u64 = 120;
const CKPT_EVERY: u64 = 10;

fn deck() -> Deck {
    Deck::weibel(8, 8, 8, 6, 0.3)
}

/// FNV-1a over every bit of simulation state the physics depends on.
fn state_hash(sim: &Simulation) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    eat(&sim.step_count().to_le_bytes());
    for arr in [
        &sim.fields.ex,
        &sim.fields.ey,
        &sim.fields.ez,
        &sim.fields.bx,
        &sim.fields.by,
        &sim.fields.bz,
        &sim.fields.jx,
        &sim.fields.jy,
        &sim.fields.jz,
    ] {
        for v in arr.iter() {
            eat(&v.to_bits().to_le_bytes());
        }
    }
    for s in &sim.species {
        for c in &s.cell {
            eat(&c.to_le_bytes());
        }
        for arr in [&s.dx, &s.dy, &s.dz, &s.ux, &s.uy, &s.uz, &s.w] {
            for v in arr.iter() {
                eat(&v.to_bits().to_le_bytes());
            }
        }
    }
    h
}

fn print_final(sim: &Simulation) {
    let e = sim.energies();
    println!(
        "final= step={} energy_bits={:016x} state_hash={:016x}",
        sim.step_count(),
        e.total().to_bits(),
        state_hash(sim)
    );
}

/// Step to `TOTAL_STEPS`, checkpointing every `CKPT_EVERY` steps when a
/// directory is given; `pace` adds a per-step sleep so an external
/// killer has a window to land mid-run.
fn drive(sim: &mut Simulation, dir: Option<&Path>, pace: bool) {
    while sim.step_count() < TOTAL_STEPS {
        if let Some(d) = dir {
            if sim.step_count().is_multiple_of(CKPT_EVERY) {
                let bytes = sim.checkpoint_to(&d.join("snap.vpck")).expect("checkpoint");
                println!("checkpointed step {} ({bytes} bytes)", sim.step_count());
            }
        }
        if pace {
            std::thread::sleep(Duration::from_millis(15));
        }
        sim.step();
    }
    print_final(sim);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("reference") => {
            let mut sim = deck().build();
            drive(&mut sim, None, false);
        }
        Some("run") => {
            let dir = Path::new(args.get(2).map(String::as_str).unwrap_or("/tmp/vpic-ckpt"));
            std::fs::create_dir_all(dir).expect("checkpoint dir");
            let mut sim = deck().build();
            drive(&mut sim, Some(dir), true);
        }
        Some("resume") => {
            let dir = Path::new(args.get(2).map(String::as_str).unwrap_or("/tmp/vpic-ckpt"));
            let (mut sim, fell_back) =
                Simulation::restore_from_path(&dir.join("snap.vpck")).expect("restore");
            println!(
                "restored step {} from {}",
                sim.step_count(),
                if fell_back { "rotated .prev snapshot" } else { "primary snapshot" }
            );
            drive(&mut sim, Some(dir), false);
        }
        _ => {
            eprintln!("usage: kill_resume reference | run <dir> | resume <dir>");
            std::process::exit(2);
        }
    }
}
