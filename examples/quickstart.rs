//! Quickstart: build a small thermal plasma, run it, watch conservation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vpic2::core::Deck;

fn main() {
    // a quiet, charge-neutral thermal plasma: 16³ cells, 8 electrons per
    // cell plus a neutralizing mobile ion background
    let deck = Deck::uniform(16, 16, 16, 8);
    let mut sim = deck.build();
    println!(
        "deck '{}': {} cells, {} particles, dt = {:.4}",
        deck.name,
        sim.grid.cells(),
        sim.particle_count(),
        sim.grid.dt
    );

    let e0 = sim.energies();
    println!(
        "step {:>4}: field E {:.4e}  field B {:.4e}  kinetic {:.4e}",
        0,
        e0.field_e,
        e0.field_b,
        e0.kinetic.iter().sum::<f64>()
    );

    for chunk in 0..5 {
        let stats = sim.run(10);
        let e = sim.energies();
        println!(
            "step {:>4}: field E {:.4e}  field B {:.4e}  kinetic {:.4e}  (crossings {})",
            (chunk + 1) * 10,
            e.field_e,
            e.field_b,
            e.kinetic.iter().sum::<f64>(),
            stats.crossings
        );
    }

    let e1 = sim.energies();
    let drift = ((e1.total() - e0.total()) / e0.total()).abs();
    println!("\ntotal energy drift over 50 steps: {:.3}%", 100.0 * drift);
    println!("Gauss-law residual: {:.3e}", sim.gauss_residual());
    assert!(drift < 0.05, "energy conservation holds");
    println!("ok: energy conserved, charge continuity maintained");
}
